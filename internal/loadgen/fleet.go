package loadgen

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"cloudmon/internal/core"
	"cloudmon/internal/faults"
	"cloudmon/internal/fleet"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// FleetOptions configures an in-process sharded deployment: one simulated
// cloud, N monitor instances with disjoint project ownership, and a
// routing front tier.
type FleetOptions struct {
	// DeployOptions carries the per-instance monitor knobs (eval engine,
	// fail policy, post mode, cache TTL, faults, ...). AuditDir, when set,
	// is the fleet root: each instance writes its trail to a subdirectory
	// named after its id.
	DeployOptions
	// Instances is the fleet size N (required, ≥ 1).
	Instances int
	// TenantCount is the number of tenant projects K the workload spreads
	// across (default 4 × Instances — enough keys for the balance and
	// remap properties to hold statistically).
	TenantCount int
	// RTT simulates a network round trip on every monitor→cloud request
	// (0 = in-process speed). This is what makes single-instance runs
	// latency-bound, the regime horizontal sharding is for.
	RTT time.Duration
	// Conns bounds each instance's concurrent backend connections
	// (0 = unlimited) — the per-process connection budget that caps one
	// instance's throughput regardless of offered load.
	Conns int
}

// FleetInstance is one monitor of the fleet.
type FleetInstance struct {
	// ID is the instance id ("m-00", "m-01", ...).
	ID string
	// Sys is the instance's assembled pipeline; Sys.Metrics carries the
	// instance= constant label.
	Sys *core.System
	// Bus is the instance's invalidation fan-out.
	Bus *fleet.Bus
	// Audit is the instance's audit sink (nil without AuditDir).
	Audit *obs.AuditLog
	// AuditDir is the instance's audit subdirectory ("" without AuditDir).
	AuditDir string
}

// FleetDeployment is a ready-to-drive sharded deployment: drive
// Target (which routes through Front) with Run, resize mid-run with
// Resize, and verify with the aggregate accessors.
type FleetDeployment struct {
	// Cloud is the single simulated OpenStack deployment shared by all
	// instances (the shared-nothing property is about monitor state, not
	// the cloud under observation).
	Cloud *openstack.Cloud
	// Front is the routing tier; Target.HTTPClient drives it in-process.
	Front *fleet.Front
	// FrontRegistry holds the front's own counters (requests, routed,
	// remaps, fence waits).
	FrontRegistry *obs.Registry
	// Instances are the fleet members, in id order. All of them are
	// built up front; Resize selects how many the ring routes to.
	Instances []*FleetInstance
	// Tenants are the seeded tenant projects with per-role tokens.
	Tenants []Tenant
	// Target drives the front with the multi-tenant workload.
	Target Target
	// Injector is the shared fault injector (nil without Faults).
	Injector *faults.Injector

	members []*fleet.Member
	byID    map[string]*fleet.Member
}

// DeployFleet seeds one cloud with K tenant projects, builds N monitor
// instances over it (each with its own pre-state cache, flight groups,
// async-post queue, metric registry and audit segment), and assembles the
// consistent-hash front over them.
func DeployFleet(opts FleetOptions) (*FleetDeployment, error) {
	if opts.Instances < 1 {
		return nil, fmt.Errorf("loadgen: fleet needs at least one instance, got %d", opts.Instances)
	}
	tenantCount := opts.TenantCount
	if tenantCount <= 0 {
		tenantCount = 4 * opts.Instances
	}
	quota := opts.QuotaVolumes
	if quota <= 0 {
		quota = 1000000
	}

	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "loadgen",
		Quota:       cinder.QuotaSet{Volumes: quota, Gigabytes: 1 << 30},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw", Group: paper.GroupServiceArchitect},
			{Name: "carol", Password: "pw", Group: paper.GroupBusinessAnalyst},
			{Name: "cm-svc", Password: "pw", Group: paper.GroupProjAdministrator},
		},
	})
	cloudHTTP := httpkit.HandlerClient(cloud)

	// Seed the tenant projects: same quota and group→role grants as the
	// base project, then one token per role per tenant (OpenStack tokens
	// are project-scoped).
	tenants := make([]Tenant, tenantCount)
	for i := range tenants {
		proj := cloud.Identity.CreateProject(fmt.Sprintf("tenant-%02d", i))
		cloud.Volumes.SetQuota(proj.ID, cinder.QuotaSet{Volumes: quota, Gigabytes: 1 << 30})
		for group, role := range paper.GroupRole() {
			cloud.Identity.AssignRole(proj.ID, group, role)
		}
		tokens := map[string]string{RoleAnonymous: ""}
		for role, user := range map[string]string{RoleAdmin: "alice", RoleMember: "bob", RoleUser: "carol"} {
			auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
			tok, err := auth.Authenticate(user, "pw", proj.ID)
			if err != nil {
				return nil, fmt.Errorf("loadgen: fleet: authenticate %s@%s: %w", user, proj.ID, err)
			}
			tokens[role] = tok
		}
		tenants[i] = Tenant{ProjectID: proj.ID, Tokens: tokens}
	}

	var inj *faults.Injector
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("loadgen: fleet: %w", err)
		}
		inj = faults.NewInjector(opts.Faults)
	}

	d := &FleetDeployment{
		Cloud:    cloud,
		Tenants:  tenants,
		Injector: inj,
		byID:     map[string]*fleet.Member{},
	}
	// The bus closures read the deployment's front, which exists only
	// after all members are built — late binding breaks the cycle.
	ringView := func() *fleet.Ring {
		if d.Front == nil {
			return nil
		}
		return d.Front.Ring()
	}
	memberView := func(id string) *fleet.Member { return d.byID[id] }

	for i := 0; i < opts.Instances; i++ {
		id := fmt.Sprintf("m-%02d", i)

		// Shared-nothing cloud path per instance: fault injection (shared
		// counters), simulated RTT, then the instance's connection budget
		// outermost so a slot is held for the whole round trip.
		var rt http.RoundTripper = httpkit.HandlerRoundTripper(cloud)
		if inj != nil {
			rt = inj.RoundTripper(rt)
		}
		if opts.RTT > 0 {
			rt = delayTripper{next: rt, d: opts.RTT}
		}
		if opts.Conns > 0 {
			rt = newBudgetTripper(rt, opts.Conns)
		}
		monitorHTTP := &http.Client{Transport: rt}

		var audit *obs.AuditLog
		auditDir := ""
		if opts.AuditDir != "" {
			auditDir = filepath.Join(opts.AuditDir, id)
			if err := os.MkdirAll(auditDir, 0o755); err != nil {
				d.Close()
				return nil, fmt.Errorf("loadgen: fleet: %w", err)
			}
			var err error
			audit, err = obs.OpenAuditLog(auditDir, opts.AuditMaxBytes)
			if err != nil {
				d.Close()
				return nil, fmt.Errorf("loadgen: fleet: %w", err)
			}
		}

		bus := &fleet.Bus{Self: id, Ring: ringView, Member: memberView, Retry: opts.Retry}
		sys, err := core.Build(core.Options{
			Model:    paper.CinderModel(),
			CloudURL: "http://cloud.internal",
			ServiceAccount: osbinding.ServiceAccount{
				User: "cm-svc", Password: "pw", ProjectID: seed.ProjectID,
			},
			InstanceID:        id,
			OnInvalidate:      bus.OnInvalidate,
			Mode:              opts.Mode,
			Level:             opts.Level,
			Eval:              opts.Eval,
			NoFacts:           opts.NoFacts,
			FailPolicy:        opts.FailPolicy,
			Post:              opts.Post,
			PostQueueCap:      opts.PostQueueCap,
			PostWorkers:       opts.PostWorkers,
			PostBackpressure:  opts.PostBackpressure,
			CloudTimeout:      opts.CloudTimeout,
			Retry:             opts.Retry,
			Breaker:           opts.Breaker,
			ParallelSnapshots: opts.ParallelSnapshots,
			SnapshotWorkers:   opts.SnapshotWorkers,
			PreStateCacheTTL:  opts.PreStateCacheTTL,
			DegradeTTL:        opts.DegradeTTL,
			MaxLog:            opts.MaxLog,
			HTTPClient:        monitorHTTP,
			Audit:             audit,
		})
		if err != nil {
			if audit != nil {
				audit.Close()
			}
			d.Close()
			return nil, fmt.Errorf("loadgen: fleet: build %s: %w", id, err)
		}
		bus.RegisterMetrics(sys.Metrics)

		// Bump delivery goes over the real wire format: an in-process HTTP
		// client against the instance's invalidate endpoint.
		inspect := http.NewServeMux()
		inspect.Handle(fleet.InvalidatePath, fleet.InvalidateHandler(sys.Monitor))
		busHTTP := httpkit.HandlerClient(inspect)
		busBase := "http://" + id + ".internal"

		mon := sys.Monitor
		reg := sys.Metrics
		member := &fleet.Member{
			ID:    id,
			Proxy: mon,
			Metrics: func() (string, error) {
				return reg.Render(), nil
			},
			Invalidate: func(project string) error {
				return fleet.PostInvalidate(busHTTP, busBase, project)
			},
		}
		d.members = append(d.members, member)
		d.byID[id] = member
		d.Instances = append(d.Instances, &FleetInstance{
			ID: id, Sys: sys, Bus: bus, Audit: audit, AuditDir: auditDir,
		})
	}

	front, err := fleet.NewFront(d.members)
	if err != nil {
		d.Close()
		return nil, fmt.Errorf("loadgen: fleet: %w", err)
	}
	d.Front = front
	d.FrontRegistry = &obs.Registry{}
	front.RegisterMetrics(d.FrontRegistry)

	tgt := Target{
		BaseURL:    "http://fleet.internal",
		HTTPClient: httpkit.HandlerClient(front),
		Tenants:    tenants,
		Outcomes:   d.Outcomes,
		Fetch:      d.FetchEconomy,
		Audit:      nil,
	}
	if inj != nil {
		tgt.Faults = inj.Counts
	}
	if opts.Post == monitor.PostAsync {
		tgt.Drain = d.Drain
		tgt.AsyncPost = d.AsyncPostStats
	}
	if opts.AuditDir != "" {
		tgt.Audit = d.AuditCounts
	}
	d.Target = tgt
	return d, nil
}

// Resize re-rings the front over the first n instances. All instances
// stay alive (their buses keep forwarding bumps for projects they no
// longer own); only routing changes. Growing past the built fleet is an
// error.
func (d *FleetDeployment) Resize(n int) error {
	if n < 1 || n > len(d.members) {
		return fmt.Errorf("loadgen: fleet resize to %d, have %d instances", n, len(d.members))
	}
	return d.Front.Resize(d.members[:n])
}

// Outcomes sums the verdict tallies across all instances — with disjoint
// project ownership every request is judged exactly once, so the sum is
// the fleet verdict ledger.
func (d *FleetDeployment) Outcomes() map[monitor.Outcome]int {
	out := make(map[monitor.Outcome]int)
	for _, in := range d.Instances {
		for k, v := range in.Sys.Monitor.Outcomes() {
			out[k] += v
		}
	}
	return out
}

// AuditCounts sums the per-outcome audit record tallies across the
// instances' trails.
func (d *FleetDeployment) AuditCounts() map[string]int {
	out := make(map[string]int)
	for _, in := range d.Instances {
		if in.Audit == nil {
			continue
		}
		for k, v := range in.Audit.Counts() {
			out[k] += int(v)
		}
	}
	return out
}

// FetchEconomy sums the fetch-economy counters across instances.
func (d *FleetDeployment) FetchEconomy() FetchEconomy {
	var fe FetchEconomy
	for _, in := range d.Instances {
		fs := in.Sys.Monitor.FetchStats()
		fe.Requests += int(fs.Requests)
		fe.PathsFetched += int(fs.PathsFetched)
		fe.Coalesced += int(fs.Coalesced)
		fe.CloudGets += int(in.Sys.Provider.Stats().Gets)
	}
	return fe
}

// Drain blocks until every instance's async post queue is empty and every
// in-flight invalidation bump has been delivered or dropped.
func (d *FleetDeployment) Drain() {
	for _, in := range d.Instances {
		in.Sys.Monitor.DrainPost()
	}
	for _, in := range d.Instances {
		in.Bus.Wait()
	}
}

// AsyncPostStats aggregates the async post counters across instances.
// Scalars sum; the lag histograms merge bucket-wise (every instance uses
// the same bounds).
func (d *FleetDeployment) AsyncPostStats() monitor.AsyncPostStats {
	var agg monitor.AsyncPostStats
	for _, in := range d.Instances {
		st := in.Sys.Monitor.AsyncPostStats()
		agg.Enqueued += st.Enqueued
		agg.Shed += st.Shed
		agg.LateViolations += st.LateViolations
		agg.FenceWaits += st.FenceWaits
		agg.Pending += st.Pending
		agg.Lag = mergeHist(agg.Lag, st.Lag)
	}
	return agg
}

// FederatedMetrics renders the fleet's merged exposition: the front's own
// counters plus every instance scrape, one header per metric family.
func (d *FleetDeployment) FederatedMetrics() (string, error) {
	docs := []string{d.FrontRegistry.Render()}
	for _, in := range d.Instances {
		docs = append(docs, in.Sys.Metrics.Render())
	}
	return obs.MergeExpositions(docs...), nil
}

// Close drains every instance (async verdicts and bus bumps land) and
// closes the audit sinks. Safe on a partially built deployment.
func (d *FleetDeployment) Close() error {
	var firstErr error
	for _, in := range d.Instances {
		if in.Sys != nil && in.Sys.Monitor != nil {
			in.Sys.Monitor.Close()
		}
		if in.Bus != nil {
			in.Bus.Wait()
		}
	}
	for _, in := range d.Instances {
		if in.Audit != nil {
			if err := in.Audit.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func mergeHist(a, b obs.HistSnapshot) obs.HistSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	if len(a.Counts) != len(b.Counts) {
		// Mismatched shapes cannot merge bucket-wise; keep the larger
		// population's distribution but account for every observation.
		if b.Count > a.Count {
			a, b = b, a
		}
		a.Sum += b.Sum
		a.Count += b.Count
		return a
	}
	merged := obs.HistSnapshot{
		Bounds: a.Bounds,
		Counts: make([]uint64, len(a.Counts)),
		Sum:    a.Sum + b.Sum,
		Count:  a.Count + b.Count,
	}
	for i := range merged.Counts {
		merged.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	return merged
}

// delayTripper charges a fixed simulated network round trip to every
// monitor→cloud request.
type delayTripper struct {
	next http.RoundTripper
	d    time.Duration
}

func (t delayTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	time.Sleep(t.d)
	return t.next.RoundTrip(r)
}

// budgetTripper bounds an instance's concurrent backend connections —
// the per-process limit that makes one instance's throughput plateau and
// horizontal sharding pay off.
type budgetTripper struct {
	next  http.RoundTripper
	slots chan struct{}
}

func newBudgetTripper(next http.RoundTripper, n int) *budgetTripper {
	return &budgetTripper{next: next, slots: make(chan struct{}, n)}
}

func (t *budgetTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	t.slots <- struct{}{}
	defer func() { <-t.slots }()
	return t.next.RoundTrip(r)
}
