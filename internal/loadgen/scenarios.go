package loadgen

import (
	"fmt"
	"sort"
)

// Scenarios returns the named workloads, sorted by name. Each is a
// self-contained default; cmd/loadmon lets flags override the knobs.
func Scenarios() []Scenario {
	out := []Scenario{
		{
			Name:        "cinder-mixed",
			Description: "mixed read/write matrix across all roles (the default load profile)",
			Mix: []OpSpec{
				{Op: OpGetVolume, Role: RoleAdmin, Weight: 20},
				{Op: OpGetVolume, Role: RoleMember, Weight: 20},
				{Op: OpGetVolume, Role: RoleUser, Weight: 10},
				{Op: OpGetVolume, Role: RoleAnonymous, Weight: 2},
				{Op: OpCreateVolume, Role: RoleAdmin, Weight: 8},
				{Op: OpCreateVolume, Role: RoleMember, Weight: 6},
				{Op: OpUpdateVolume, Role: RoleMember, Weight: 6},
				{Op: OpDeleteVolume, Role: RoleAdmin, Weight: 8},
				{Op: OpDeleteVolume, Role: RoleUser, Weight: 2},
			},
			Clients:     16,
			Requests:    4000,
			Warmup:      200,
			Prepopulate: 16,
			Seed:        1,
		},
		{
			Name:        "cinder-read-heavy",
			Description: "GET-dominated traffic, the profile the pre-state cache accelerates",
			Mix: []OpSpec{
				{Op: OpGetVolume, Role: RoleAdmin, Weight: 30},
				{Op: OpGetVolume, Role: RoleMember, Weight: 30},
				{Op: OpGetVolume, Role: RoleUser, Weight: 30},
				{Op: OpCreateVolume, Role: RoleAdmin, Weight: 1},
				{Op: OpDeleteVolume, Role: RoleAdmin, Weight: 1},
			},
			Clients:     16,
			Requests:    4000,
			Warmup:      200,
			Prepopulate: 16,
			Seed:        1,
		},
		{
			Name:        "cinder-write-heavy",
			Description: "create/delete churn — exercises post-condition checks and cache invalidation",
			Mix: []OpSpec{
				{Op: OpCreateVolume, Role: RoleAdmin, Weight: 30},
				{Op: OpDeleteVolume, Role: RoleAdmin, Weight: 30},
				{Op: OpUpdateVolume, Role: RoleMember, Weight: 10},
				{Op: OpGetVolume, Role: RoleMember, Weight: 10},
			},
			Clients:     16,
			Requests:    4000,
			Warmup:      200,
			Prepopulate: 32,
			Seed:        1,
		},
		{
			Name:        "cinder-forbidden",
			Description: "unauthorized and anonymous writes — exercises Blocked/Rejected verdicts",
			Mix: []OpSpec{
				{Op: OpDeleteVolume, Role: RoleUser, Weight: 20},
				{Op: OpCreateVolume, Role: RoleUser, Weight: 20},
				{Op: OpCreateVolume, Role: RoleAnonymous, Weight: 10},
				{Op: OpUpdateVolume, Role: RoleAnonymous, Weight: 10},
				{Op: OpGetVolume, Role: RoleMember, Weight: 20},
			},
			Clients:     16,
			Requests:    4000,
			Warmup:      200,
			Prepopulate: 8,
			Seed:        1,
		},
		{
			Name:        "cinder-open-loop",
			Description: "fixed 500 req/s arrival rate — latency includes queueing (no coordinated omission)",
			Mix: []OpSpec{
				{Op: OpGetVolume, Role: RoleMember, Weight: 8},
				{Op: OpCreateVolume, Role: RoleAdmin, Weight: 1},
				{Op: OpDeleteVolume, Role: RoleAdmin, Weight: 1},
			},
			Clients:     32,
			Requests:    2000,
			Warmup:      100,
			Rate:        500,
			Prepopulate: 16,
			Seed:        1,
		},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds a named scenario.
func Lookup(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	names := make([]string, 0)
	for _, sc := range Scenarios() {
		names = append(names, sc.Name)
	}
	return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (have %v)", name, names)
}
