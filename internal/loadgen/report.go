package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudmon/internal/obs"
)

// LatencySummary holds the distribution of recorded request latencies in
// microseconds (floats keep the JSON stable and unit-explicit).
type LatencySummary struct {
	P50  float64 `json:"p50_us"`
	P95  float64 `json:"p95_us"`
	P99  float64 `json:"p99_us"`
	Mean float64 `json:"mean_us"`
	Max  float64 `json:"max_us"`
}

// OpStats aggregates one matrix cell.
type OpStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	MeanUS   float64 `json:"mean_us"`
}

// Report is the run summary emitted by Run — the JSON document cmd/loadmon
// prints with -json.
type Report struct {
	Scenario string `json:"scenario"`
	Clients  int    `json:"clients"`
	// Requests counts the recorded (post-warmup) requests.
	Requests int `json:"requests"`
	Warmup   int `json:"warmup"`
	// Errors counts transport failures (the system under test was
	// unreachable); contract verdicts such as 412 Blocked are measured
	// responses, not errors.
	Errors     int            `json:"errors"`
	DurationMS float64        `json:"duration_ms"`
	Throughput float64        `json:"throughput_rps"`
	Latency    LatencySummary `json:"latency"`
	// Status tallies responses by HTTP status code.
	Status map[int]int `json:"status"`
	// Ops breaks the run down per matrix cell.
	Ops map[string]OpStats `json:"ops"`
	// Verdicts tallies the monitor outcomes the run produced (present
	// when the target exposes its outcome counters). Includes warmup
	// requests: the counters are diffed around the whole run.
	Verdicts map[string]int `json:"verdicts,omitempty"`
	// InjectedFaults tallies fired fault-injection rules by kind (present
	// when the target exposes its injector counters).
	InjectedFaults map[string]int `json:"injected_faults,omitempty"`
	// Audit tallies the audit records written during the run, per outcome
	// (present when the target exposes its audit sink; diffed around the
	// run exactly like Verdicts, so the two must agree on non-OK outcomes).
	Audit map[string]int `json:"audit,omitempty"`
	// Stages holds the monitor's per-pipeline-stage latency summaries
	// (present when the target exposes its tracer). The histograms are
	// cumulative over the monitor's lifetime, warmup and prepopulation
	// included.
	Stages map[string]obs.StageSummary `json:"stages,omitempty"`
	// Fetch is the run's cloud-read economy, diffed around the run like
	// Verdicts (present when the target exposes its fetch counters).
	Fetch *FetchEconomy `json:"fetch,omitempty"`
	// AsyncPost summarizes the deferred post-verification pipeline
	// (present when the target runs -post async and saw traffic): how
	// many captures were queued or shed and the detection-lag
	// percentiles, measured from response return to verdict record.
	AsyncPost *AsyncPostReport `json:"async_post,omitempty"`
}

// AsyncPostReport is the async post section of the run summary.
type AsyncPostReport struct {
	Enqueued       uint64  `json:"enqueued"`
	Shed           uint64  `json:"shed"`
	LateViolations uint64  `json:"late_violations"`
	LagP50US       float64 `json:"lag_p50_us"`
	LagP95US       float64 `json:"lag_p95_us"`
	LagP99US       float64 `json:"lag_p99_us"`
}

// percentile returns the q-quantile (0 < q <= 1) of the sorted durations.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// buildReport merges the per-worker recorders into the run summary.
func buildReport(sc Scenario, clients int, elapsed time.Duration, recorders []*recorder, verdicts map[string]int) *Report {
	r := &Report{
		Scenario:   sc.Name,
		Clients:    clients,
		Warmup:     sc.Warmup,
		DurationMS: float64(elapsed.Nanoseconds()) / 1e6,
		Status:     make(map[int]int),
		Ops:        make(map[string]OpStats),
		Verdicts:   verdicts,
	}
	var all []time.Duration
	var sum time.Duration
	opSums := make(map[string]time.Duration)
	for _, rec := range recorders {
		for _, s := range rec.samples {
			r.Requests++
			if s.err {
				r.Errors++
			}
			r.Status[s.status]++
			all = append(all, s.latency)
			sum += s.latency
			st := r.Ops[s.op]
			st.Requests++
			if s.err {
				st.Errors++
			}
			r.Ops[s.op] = st
			opSums[s.op] += s.latency
		}
	}
	for op, st := range r.Ops {
		if st.Requests > 0 {
			st.MeanUS = us(opSums[op]) / float64(st.Requests)
		}
		r.Ops[op] = st
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		r.Latency = LatencySummary{
			P50:  us(percentile(all, 0.50)),
			P95:  us(percentile(all, 0.95)),
			P99:  us(percentile(all, 0.99)),
			Mean: us(sum) / float64(len(all)),
			Max:  us(all[len(all)-1]),
		}
	}
	if elapsed > 0 {
		r.Throughput = float64(r.Requests) / elapsed.Seconds()
	}
	return r
}

// Text renders the report as an aligned human-readable summary.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s: %d requests (%d warmup) over %d clients in %.1f ms\n",
		r.Scenario, r.Requests, r.Warmup, r.Clients, r.DurationMS)
	fmt.Fprintf(&sb, "  throughput %.0f req/s, errors %d\n", r.Throughput, r.Errors)
	fmt.Fprintf(&sb, "  latency µs: p50 %.0f  p95 %.0f  p99 %.0f  mean %.0f  max %.0f\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Mean, r.Latency.Max)
	statuses := make([]int, 0, len(r.Status))
	for s := range r.Status {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	sb.WriteString("  status:")
	for _, s := range statuses {
		fmt.Fprintf(&sb, " %d×%d", s, r.Status[s])
	}
	sb.WriteByte('\n')
	if len(r.Verdicts) > 0 {
		names := make([]string, 0, len(r.Verdicts))
		for v := range r.Verdicts {
			names = append(names, v)
		}
		sort.Strings(names)
		sb.WriteString("  verdicts:")
		for _, v := range names {
			fmt.Fprintf(&sb, " %s=%d", v, r.Verdicts[v])
		}
		sb.WriteByte('\n')
	}
	if len(r.InjectedFaults) > 0 {
		kinds := make([]string, 0, len(r.InjectedFaults))
		for k := range r.InjectedFaults {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		sb.WriteString("  injected faults:")
		for _, k := range kinds {
			fmt.Fprintf(&sb, " %s=%d", k, r.InjectedFaults[k])
		}
		sb.WriteByte('\n')
	}
	if len(r.Audit) > 0 {
		names := make([]string, 0, len(r.Audit))
		for v := range r.Audit {
			names = append(names, v)
		}
		sort.Strings(names)
		sb.WriteString("  audit records:")
		for _, v := range names {
			fmt.Fprintf(&sb, " %s=%d", v, r.Audit[v])
		}
		sb.WriteByte('\n')
	}
	if f := r.Fetch; f != nil && f.Requests > 0 {
		fmt.Fprintf(&sb, "  fetch economy: %d cloud GETs (%.2f/req), %d paths fetched (%.2f/req), %d coalesced\n",
			f.CloudGets, float64(f.CloudGets)/float64(f.Requests),
			f.PathsFetched, float64(f.PathsFetched)/float64(f.Requests),
			f.Coalesced)
	}
	if ap := r.AsyncPost; ap != nil {
		fmt.Fprintf(&sb, "  async post: %d enqueued, %d shed, %d late violations; lag µs: p50 %.0f  p95 %.0f  p99 %.0f\n",
			ap.Enqueued, ap.Shed, ap.LateViolations, ap.LagP50US, ap.LagP95US, ap.LagP99US)
	}
	if len(r.Stages) > 0 {
		for _, name := range obs.StageNames() {
			st, ok := r.Stages[name]
			if !ok || st.Count == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  stage %-14s %8d spans  p50 %.0f  p95 %.0f  p99 %.0f  mean %.0f µs\n",
				name, st.Count, st.P50US, st.P95US, st.P99US, st.MeanUS)
		}
	}
	ops := make([]string, 0, len(r.Ops))
	for op := range r.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := r.Ops[op]
		fmt.Fprintf(&sb, "  %-28s %6d req  %5d err  mean %.0f µs\n", op, st.Requests, st.Errors, st.MeanUS)
	}
	return sb.String()
}
