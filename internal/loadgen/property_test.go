package loadgen

import (
	"testing"

	"cloudmon/internal/monitor"
)

// TestObserveZeroViolationsProperty is the satellite property: a loadgen
// run in Observe mode against an unmutated cloud yields zero contract
// violations regardless of the mix seed, and the per-SecReq coverage
// counters sum to the number of matched (SecReq, request) pairs the run
// produced.
//
// The workload is sequential (Clients: 1): with one request in flight at a
// time the snapshot-forward-snapshot workflow sees consistent state, so
// any violation would be a real contract/cloud disagreement — exactly what
// the mutation campaign relies on. (Concurrent runs can produce benign
// TOCTOU violations; the soak covers those with structural invariants.)
func TestObserveZeroViolationsProperty(t *testing.T) {
	seeds := []int64{1, 7, 42, 1234, 99991}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		requests := 400
		dep, err := Deploy(DeployOptions{Mode: monitor.Observe, MaxLog: requests + 64})
		if err != nil {
			t.Fatal(err)
		}
		sc := Scenario{
			Name: "property",
			Mix: []OpSpec{
				{Op: OpGetVolume, Role: RoleAdmin, Weight: 8},
				{Op: OpGetVolume, Role: RoleMember, Weight: 8},
				{Op: OpGetVolume, Role: RoleUser, Weight: 6},
				{Op: OpGetVolume, Role: RoleAnonymous, Weight: 2},
				{Op: OpCreateVolume, Role: RoleAdmin, Weight: 5},
				{Op: OpCreateVolume, Role: RoleUser, Weight: 2},
				{Op: OpUpdateVolume, Role: RoleMember, Weight: 4},
				{Op: OpDeleteVolume, Role: RoleAdmin, Weight: 4},
				{Op: OpDeleteVolume, Role: RoleUser, Weight: 2},
			},
			Clients:     1,
			Requests:    requests,
			Warmup:      20,
			Prepopulate: 8,
			Seed:        seed,
		}
		report, err := Run(sc, dep.Target)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if report.Errors != 0 {
			t.Errorf("seed %d: %d transport errors", seed, report.Errors)
		}
		for outcome, n := range dep.Sys.Monitor.Outcomes() {
			if outcome.IsViolation() && n > 0 {
				t.Errorf("seed %d: %d %s verdicts on an unmutated cloud", seed, n, outcome)
			}
		}
		if len(dep.Sys.Monitor.Violations()) != 0 {
			t.Errorf("seed %d: violation log not empty: %+v", seed, dep.Sys.Monitor.Violations())
		}

		// Coverage bookkeeping: the counters the inspect API reports must
		// sum to the matched pairs actually recorded.
		matched := 0
		for _, v := range dep.Sys.Monitor.Log() {
			matched += len(v.MatchedSecReqs)
		}
		covered := 0
		for _, n := range dep.Sys.Monitor.Coverage() {
			covered += n
		}
		if covered != matched {
			t.Errorf("seed %d: coverage sum %d != matched SecReq pairs %d", seed, covered, matched)
		}
	}
}
