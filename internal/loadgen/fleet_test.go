package loadgen

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
)

// fleetScenario is the soak matrix sized for fleet runs: every verdict
// class, multi-tenant draw handled by Target.Tenants.
func fleetScenario(clients, requests int) Scenario {
	sc := soakScenario(clients, requests)
	sc.Name = "fleet-soak"
	sc.Warmup = 0 // keep verdict tallies equal to the request count
	sc.Prepopulate = 4
	return sc
}

// runFleet deploys a fleet, drives the mixed matrix through the front,
// and sweeps every instance's verdict log with the single-instance
// invariant checker. Under -race this is the concurrency proof for the
// front's fence and the per-instance pipelines together.
func runFleet(t *testing.T, opts FleetOptions, requests int) (*FleetDeployment, *Report) {
	t.Helper()
	opts.Mode = monitor.Enforce
	opts.MaxLog = requests + 1024
	dep, err := DeployFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	rep, err := Run(fleetScenario(16, requests), dep.Target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("%d transport errors through the front", rep.Errors)
	}
	for _, in := range dep.Instances {
		checkVerdictInvariants(t, in.Sys.Monitor.Log(), monitor.Enforce, opts.FailPolicy)
	}
	return dep, rep
}

// TestFleetVerdictConservation: a steady 3-instance fleet judges every
// request exactly once — the per-instance verdict tallies sum to the
// request count, routing is remap-free, and the federated exposition
// carries every instance.
func TestFleetVerdictConservation(t *testing.T) {
	requests := 2400
	if testing.Short() {
		requests = 800
	}
	dep, rep := runFleet(t, FleetOptions{Instances: 3, TenantCount: 12}, requests)

	total := 0
	for _, n := range rep.Verdicts {
		total += n
	}
	if total != requests {
		t.Errorf("fleet verdicts sum to %d, want %d (every request judged exactly once)", total, requests)
	}

	st := dep.Front.Stats()
	if st.Remaps != 0 {
		t.Errorf("steady run recorded %d remaps, want 0 (stable per-project routing)", st.Remaps)
	}
	if st.Projects != len(dep.Tenants) {
		t.Errorf("front saw %d projects, want %d", st.Projects, len(dep.Tenants))
	}
	served := uint64(0)
	for _, n := range st.Routed {
		served += n
	}
	if served != st.Requests {
		t.Errorf("per-instance routed counts sum to %d, front counted %d", served, st.Requests)
	}

	// Every tenant's requests landed on its ring owner, and at least two
	// instances took traffic (the workload actually sharded).
	ring := dep.Front.Ring()
	owners := dep.Front.Owners()
	busy := map[string]bool{}
	for project, owner := range owners {
		if want := ring.Owner(project); owner != want {
			t.Errorf("project %s owned by %s, ring says %s", project, owner, want)
		}
		busy[owner] = true
	}
	if len(busy) < 2 {
		t.Errorf("only %d instances took traffic across %d tenants", len(busy), len(dep.Tenants))
	}

	// The federated exposition parses, one header per family, and carries
	// each instance's verdict counters under its instance label.
	doc, err := dep.FederatedMetrics()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText([]byte(doc))
	if err != nil {
		t.Fatalf("federated exposition does not parse: %v", err)
	}
	perInstance := map[string]float64{}
	for _, s := range obs.Find(samples, "cloudmon_verdicts_total") {
		perInstance[s.Labels["instance"]] += s.Value
	}
	for _, in := range dep.Instances {
		want := 0
		for _, n := range in.Sys.Monitor.Outcomes() {
			want += n
		}
		if got := int(perInstance[in.ID]); got != want {
			t.Errorf("federation reports %d verdicts for %s, instance counters say %d", got, in.ID, want)
		}
	}
	if got := obs.Find(samples, "fleet_requests_total"); len(got) != 1 {
		t.Errorf("front counters missing from federation: %v", got)
	}
}

// TestFleetResizeRemap: a concurrent run survives a mid-run 3→4 resize
// with zero transport errors, verdict conservation, and only the moved
// projects remapped.
func TestFleetResizeRemap(t *testing.T) {
	requests := 2400
	if testing.Short() {
		requests = 1200
	}
	opts := FleetOptions{Instances: 4, TenantCount: 32}
	opts.Mode = monitor.Enforce
	opts.MaxLog = requests + 1024
	dep, err := DeployFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if err := dep.Resize(3); err != nil {
		t.Fatal(err)
	}
	oldRing := dep.Front.Ring()

	// Trigger the grow-by-one a third of the way into the run, from a
	// worker goroutine — exactly how a production resize lands.
	var count atomic.Int64
	var once sync.Once
	tgt := dep.Target
	inner := tgt.HTTPClient.Transport
	tgt.HTTPClient = &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		if count.Add(1) == int64(requests/3) {
			once.Do(func() {
				if err := dep.Resize(4); err != nil {
					t.Errorf("resize: %v", err)
				}
			})
		}
		return inner.RoundTrip(r)
	})}

	rep, err := Run(fleetScenario(16, requests), tgt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("%d transport errors across the resize", rep.Errors)
	}
	total := 0
	for _, n := range rep.Verdicts {
		total += n
	}
	if total != requests {
		t.Errorf("fleet verdicts sum to %d, want %d — requests dropped or double-judged", total, requests)
	}
	for _, in := range dep.Instances {
		checkVerdictInvariants(t, in.Sys.Monitor.Log(), monitor.Enforce, 0)
	}

	newRing := dep.Front.Ring()
	if newRing.Size() != 4 {
		t.Fatalf("ring size %d after resize", newRing.Size())
	}
	moved := 0
	for _, tn := range dep.Tenants {
		if oldRing.Owner(tn.ProjectID) != newRing.Owner(tn.ProjectID) {
			moved++
		}
	}
	st := dep.Front.Stats()
	if st.Remaps == 0 {
		t.Error("resize recorded no remaps — the new instance took nothing over")
	}
	if int(st.Remaps) > moved {
		t.Errorf("front recorded %d remaps for %d moved projects — a project remapped twice", st.Remaps, moved)
	}
	// Project ids are random, so the moved count is binomial around
	// K/N' = 8; 50%+1 of K=32 is > 4σ out. The strict 40% acceptance
	// bound runs in loadmon -verify over a larger key population.
	if bound := len(dep.Tenants)/2 + 1; moved > bound {
		t.Errorf("%d/%d projects moved on 3→4 resize, want ≤ %d", moved, len(dep.Tenants), bound)
	}
	// Post-resize ownership must match the new ring exactly.
	for project, owner := range dep.Front.Owners() {
		if want := newRing.Owner(project); owner != want {
			t.Errorf("project %s stuck on %s after resize, ring says %s", project, owner, want)
		}
	}
}

// TestFleetChaosSoak drives the ~20% mixed-fault profile through the
// front with a fail-open fleet: the invariant sweep runs per instance and
// the verdict ledger still sums to the request count.
func TestFleetChaosSoak(t *testing.T) {
	requests := 2000
	if testing.Short() {
		requests = 800
	}
	base := chaosOpts(t, monitor.FailOpen)
	dep, rep := runFleet(t, FleetOptions{
		DeployOptions: base,
		Instances:     3,
		TenantCount:   12,
	}, requests)
	if dep.Injector == nil || dep.Injector.Total() == 0 {
		t.Fatal("fleet chaos soak injected no faults; the profile is not wired in")
	}
	total := 0
	for _, n := range rep.Verdicts {
		total += n
	}
	if total != requests {
		t.Errorf("fleet verdicts sum to %d under chaos, want %d", total, requests)
	}
}

// TestFleetAsyncPostAggregation: async post across instances drains to a
// clean aggregate — nothing pending, lag histogram holds every enqueue.
func TestFleetAsyncPostAggregation(t *testing.T) {
	requests := 1600
	if testing.Short() {
		requests = 600
	}
	dep, rep := runFleet(t, FleetOptions{
		DeployOptions: DeployOptions{Post: monitor.PostAsync},
		Instances:     2,
		TenantCount:   8,
	}, requests)
	st := dep.AsyncPostStats()
	if st.Enqueued == 0 {
		t.Fatal("fleet async run enqueued nothing")
	}
	if st.Pending != 0 {
		t.Fatalf("pending %d after drained fleet run", st.Pending)
	}
	if st.Lag.Count != st.Enqueued {
		t.Fatalf("aggregate lag histogram holds %d samples for %d enqueued", st.Lag.Count, st.Enqueued)
	}
	if rep.AsyncPost == nil {
		t.Fatal("report missing the aggregated async post section")
	}
}

// TestFleetAuditStamping: every audit record lands in its instance's own
// trail, stamped with that instance id, and the summed audit tallies
// agree with the summed verdict tallies on audited outcomes.
func TestFleetAuditStamping(t *testing.T) {
	dir := t.TempDir()
	requests := 1200
	if testing.Short() {
		requests = 600
	}
	dep, rep := runFleet(t, FleetOptions{
		DeployOptions: DeployOptions{AuditDir: dir},
		Instances:     3,
		TenantCount:   9,
	}, requests)
	if err := dep.Close(); err != nil {
		t.Fatal(err)
	}
	stamped := 0
	for _, in := range dep.Instances {
		recs, err := obs.ReadAuditDir(in.AuditDir)
		if err != nil {
			t.Fatalf("scan %s: %v", in.AuditDir, err)
		}
		for _, rec := range recs.Records {
			if rec.Instance != in.ID {
				t.Fatalf("record in %s trail stamped %q", in.ID, rec.Instance)
			}
			stamped++
		}
	}
	audited := 0
	for _, n := range dep.AuditCounts() {
		audited += n
	}
	if stamped != audited {
		t.Errorf("scanned %d stamped records, audit counters say %d", stamped, audited)
	}
	if rep.Audit == nil {
		t.Error("report missing audit tallies for an audited fleet run")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
