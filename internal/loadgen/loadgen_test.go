package loadgen

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"cloudmon/internal/monitor"
)

func TestLookup(t *testing.T) {
	for _, sc := range Scenarios() {
		got, err := Lookup(sc.Name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", sc.Name, err)
		}
		if got.Name != sc.Name {
			t.Errorf("Lookup(%q) returned %q", sc.Name, got.Name)
		}
		if len(got.Mix) == 0 {
			t.Errorf("scenario %q has an empty mix", sc.Name)
		}
		for _, cell := range got.Mix {
			if cell.Weight <= 0 {
				t.Errorf("scenario %q cell %s has weight %d", sc.Name, cell.Name(), cell.Weight)
			}
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("Lookup accepted an unknown scenario")
	}
}

func TestPickOpRespectsWeights(t *testing.T) {
	mix := []OpSpec{
		{Op: OpGetVolume, Role: RoleAdmin, Weight: 90},
		{Op: OpDeleteVolume, Role: RoleAdmin, Weight: 10},
	}
	wk := worker{rng: rand.New(rand.NewSource(42)), weights: mix, total: 100}
	counts := map[string]int{}
	const draws = 10000
	for i := 0; i < draws; i++ {
		counts[wk.pickOp().Name()]++
	}
	gets := counts["get-volume/admin"]
	if gets < draws*80/100 || gets > draws*95/100 {
		t.Errorf("90%%-weight cell drawn %d/%d times", gets, draws)
	}
	if counts["delete-volume/admin"] == 0 {
		t.Error("10%-weight cell never drawn")
	}
}

func TestPercentile(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.q); got != c.want {
			t.Errorf("percentile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

func TestVolumePool(t *testing.T) {
	p := &volumePool{}
	rng := rand.New(rand.NewSource(1))
	if _, ok := p.pick(rng); ok {
		t.Error("pick on empty pool succeeded")
	}
	p.add("a")
	p.add("b")
	if id, ok := p.pick(rng); !ok || (id != "a" && id != "b") {
		t.Errorf("pick = %q, %v", id, ok)
	}
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		id, ok := p.take(rng)
		if !ok {
			t.Fatal("take failed with entries present")
		}
		seen[id] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Errorf("take did not drain both ids: %v", seen)
	}
	if _, ok := p.take(rng); ok {
		t.Error("take on drained pool succeeded")
	}
}

// TestRunSmoke drives a small closed-loop run end to end in process and
// checks the report's accounting.
func TestRunSmoke(t *testing.T) {
	dep, err := Deploy(DeployOptions{Mode: monitor.Enforce})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name: "smoke",
		Mix: []OpSpec{
			{Op: OpGetVolume, Role: RoleMember, Weight: 3},
			{Op: OpCreateVolume, Role: RoleAdmin, Weight: 1},
		},
		Clients:     4,
		Requests:    200,
		Warmup:      20,
		Prepopulate: 4,
		Seed:        7,
	}
	report, err := Run(sc, dep.Target)
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != sc.Requests-sc.Warmup {
		t.Errorf("recorded %d requests, want %d", report.Requests, sc.Requests-sc.Warmup)
	}
	if report.Errors != 0 {
		t.Errorf("errors = %d, want 0", report.Errors)
	}
	if report.Throughput <= 0 {
		t.Errorf("throughput = %f", report.Throughput)
	}
	if report.Latency.P50 <= 0 || report.Latency.P99 < report.Latency.P50 {
		t.Errorf("implausible latency summary %+v", report.Latency)
	}
	if len(report.Verdicts) == 0 {
		t.Error("no verdict tallies despite Outcomes source")
	}
	sum := 0
	for _, st := range report.Ops {
		sum += st.Requests
	}
	if sum != report.Requests {
		t.Errorf("per-op requests sum %d != total %d", sum, report.Requests)
	}
}

// TestRunOpenLoop exercises the rate-paced dispatcher.
func TestRunOpenLoop(t *testing.T) {
	dep, err := Deploy(DeployOptions{Mode: monitor.Enforce})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name:        "open",
		Mix:         []OpSpec{{Op: OpGetVolume, Role: RoleMember, Weight: 1}},
		Clients:     4,
		Requests:    100,
		Rate:        2000,
		Prepopulate: 2,
		Seed:        1,
	}
	report, err := Run(sc, dep.Target)
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != 100 {
		t.Errorf("recorded %d requests, want 100", report.Requests)
	}
	// 100 arrivals at 2000/s should take at least ~50ms of schedule.
	if report.DurationMS < 40 {
		t.Errorf("open loop finished in %.1f ms — pacing not applied", report.DurationMS)
	}
}

// TestReportJSONShape pins the report's JSON field names — the contract of
// `loadmon -json`.
func TestReportJSONShape(t *testing.T) {
	dep, err := Deploy(DeployOptions{Mode: monitor.Enforce})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name:        "shape",
		Mix:         []OpSpec{{Op: OpGetVolume, Role: RoleAdmin, Weight: 1}},
		Clients:     2,
		Requests:    50,
		Prepopulate: 2,
		Seed:        1,
	}
	report, err := Run(sc, dep.Target)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scenario", "clients", "requests", "warmup", "errors",
		"duration_ms", "throughput_rps", "latency", "status", "ops"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, data)
		}
	}
	lat, _ := decoded["latency"].(map[string]any)
	for _, key := range []string{"p50_us", "p95_us", "p99_us", "mean_us", "max_us"} {
		if _, ok := lat[key]; !ok {
			t.Errorf("latency JSON missing %q", key)
		}
	}
}

// TestRunValidation rejects malformed scenarios and targets.
func TestRunValidation(t *testing.T) {
	tgt := Target{ProjectID: "p"}
	if _, err := Run(Scenario{Name: "x"}, tgt); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := Run(Scenario{Name: "x",
		Mix: []OpSpec{{Op: OpGetVolume, Role: RoleAdmin, Weight: 0}}, Requests: 1}, tgt); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := Run(Scenario{Name: "x",
		Mix: []OpSpec{{Op: OpGetVolume, Role: RoleAdmin, Weight: 1}}}, tgt); err == nil {
		t.Error("missing budget accepted")
	}
	if _, err := Run(Scenario{Name: "x",
		Mix: []OpSpec{{Op: OpGetVolume, Role: RoleAdmin, Weight: 1}}, Requests: 1}, Target{}); err == nil {
		t.Error("missing project accepted")
	}
}

// TestFetchEconomyLazyVsEager runs the same serial workload under both
// evaluation engines and checks the report's fetch-economy section: the
// lazy engine reads strictly less of the cloud, a serial loop coalesces
// nothing, and the eager engine's reads match its two-snapshots-per-check
// arithmetic.
func TestFetchEconomyLazyVsEager(t *testing.T) {
	run := func(eval monitor.EvalMode) *Report {
		t.Helper()
		dep, err := Deploy(DeployOptions{Mode: monitor.Enforce, Eval: eval})
		if err != nil {
			t.Fatal(err)
		}
		sc := Scenario{
			Name: "economy",
			Mix: []OpSpec{
				{Op: OpGetVolume, Role: RoleMember, Weight: 3},
				{Op: OpDeleteVolume, Role: RoleAdmin, Weight: 1},
			},
			Clients:     1,
			Requests:    120,
			Prepopulate: 40,
			Seed:        11,
		}
		report, err := Run(sc, dep.Target)
		if err != nil {
			t.Fatal(err)
		}
		if report.Fetch == nil {
			t.Fatal("report has no fetch economy despite Fetch source")
		}
		return report
	}
	lazy := run(monitor.EvalLazy)
	eager := run(monitor.EvalEager)
	if lazy.Fetch.Requests != eager.Fetch.Requests {
		t.Fatalf("checked requests diverge: lazy %d, eager %d", lazy.Fetch.Requests, eager.Fetch.Requests)
	}
	if lazy.Fetch.CloudGets >= eager.Fetch.CloudGets {
		t.Errorf("lazy used %d cloud GETs, eager %d — lazy must read strictly less",
			lazy.Fetch.CloudGets, eager.Fetch.CloudGets)
	}
	if lazy.Fetch.Coalesced != 0 || eager.Fetch.Coalesced != 0 {
		t.Errorf("serial run coalesced fetches: lazy %d, eager %d", lazy.Fetch.Coalesced, eager.Fetch.Coalesced)
	}
	// In process, every monitor-side path fetch is exactly one cloud GET.
	for name, r := range map[string]*Report{"lazy": lazy, "eager": eager} {
		if r.Fetch.PathsFetched != r.Fetch.CloudGets {
			t.Errorf("%s: %d paths fetched but %d cloud GETs", name, r.Fetch.PathsFetched, r.Fetch.CloudGets)
		}
	}
}
