// Package loadgen is the workload generator for the cloud monitor: it
// drives configurable concurrent request mixes — a role × method ×
// resource matrix over the volume API — through the monitor proxy (or
// straight at a cloud) and reports throughput, latency percentiles and
// monitor-verdict tallies.
//
// Generated REST stacks are only credible when load-tested like
// hand-written ones, and runtime contract monitors live or die on
// overhead: loadgen is both the proof harness (the -race soak and the
// Observe-mode zero-violation property run on top of it) and the
// measurement tool behind EXPERIMENTS.md E13.
//
// Two loop disciplines are supported:
//
//   - closed loop (Rate == 0): Clients workers issue requests
//     back-to-back; throughput is bounded by the system under test.
//   - open loop (Rate > 0): arrivals are scheduled at a fixed rate
//     independent of completions; latency is measured from the scheduled
//     arrival time, so queueing delay is charged to the system
//     (no coordinated omission).
package loadgen

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
	"cloudmon/internal/osclient"
)

// OpKind enumerates the workload operations (the method × resource axis of
// the matrix; the monitor's Cinder model exposes exactly these triggers).
type OpKind int

// Operations.
const (
	// OpGetVolume reads one volume (GET item).
	OpGetVolume OpKind = iota + 1
	// OpCreateVolume creates a volume (POST collection).
	OpCreateVolume
	// OpUpdateVolume renames a volume (PUT item).
	OpUpdateVolume
	// OpDeleteVolume deletes a volume (DELETE item).
	OpDeleteVolume
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case OpGetVolume:
		return "get-volume"
	case OpCreateVolume:
		return "create-volume"
	case OpUpdateVolume:
		return "update-volume"
	case OpDeleteVolume:
		return "delete-volume"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Roles of the paper's example deployment (Table I), plus the anonymous
// requester. A Target maps each role it supports to an auth token.
const (
	RoleAdmin     = "admin"
	RoleMember    = "member"
	RoleUser      = "user"
	RoleAnonymous = "anonymous"
)

// OpSpec is one cell of the workload matrix: an operation issued under a
// role, drawn with the given weight.
type OpSpec struct {
	Op     OpKind `json:"op"`
	Role   string `json:"role"`
	Weight int    `json:"weight"`
}

// Name labels the cell in reports, e.g. "get-volume/member".
func (s OpSpec) Name() string { return s.Op.String() + "/" + s.Role }

// Scenario is a named, reproducible workload.
type Scenario struct {
	// Name identifies the scenario in reports and the CLI.
	Name string
	// Description is a one-line summary for -list.
	Description string
	// Mix is the weighted role × operation matrix. Required.
	Mix []OpSpec
	// Clients is the number of concurrent workers (default 8).
	Clients int
	// Requests is the total request budget, warmup included. When zero,
	// the run is bounded by Duration instead.
	Requests int
	// Duration bounds the run when Requests is zero.
	Duration time.Duration
	// Warmup is the number of leading requests excluded from the latency
	// and throughput figures (they still reach the system under test).
	Warmup int
	// Rate switches to an open loop: scheduled arrivals per second.
	Rate float64
	// Seed makes the op draw deterministic per worker.
	Seed int64
	// Prepopulate creates this many volumes (as admin) before the run so
	// read and delete cells have targets (default 8).
	Prepopulate int
}

// Tenant is one project of a multi-tenant workload, with the per-role
// tokens scoped to it (OpenStack tokens are project-scoped, so each
// tenant authenticates separately).
type Tenant struct {
	// ProjectID is the tenant's project.
	ProjectID string
	// Tokens maps role name -> X-Auth-Token for this project.
	Tokens map[string]string
}

// Target is the system under test: the monitor proxy (or a bare cloud)
// reachable through an HTTP client.
type Target struct {
	// BaseURL is the proxy's root URL.
	BaseURL string
	// HTTPClient performs the requests (httpkit.HandlerClient for
	// in-process runs; nil means http.DefaultClient).
	HTTPClient *http.Client
	// ProjectID is the project whose volume API the workload addresses.
	ProjectID string
	// Tokens maps role name -> X-Auth-Token. The anonymous role maps to
	// the empty token; roles absent from the map are issued unauthenticated.
	Tokens map[string]string
	// Tenants, when non-empty, spreads the workload across multiple
	// projects: each request draws a tenant uniformly, and every tenant
	// keeps its own volume pool and role clients. ProjectID/Tokens are
	// ignored in that case. Fleet runs route per-project, so a
	// multi-tenant workload is what exercises the sharding.
	Tenants []Tenant
	// Outcomes, if set, supplies the monitor's outcome counters; Run
	// diffs it around the run to produce the report's verdict tallies.
	Outcomes func() map[monitor.Outcome]int
	// Faults, if set, supplies the fault injector's per-kind counters
	// (faults.Injector.Counts); Run diffs it around the run to report how
	// much chaos the run actually absorbed.
	Faults func() map[string]int
	// Stages, if set, supplies the monitor's per-pipeline-stage latency
	// summaries (monitor.StageSummaries); sampled after the run for the
	// report's stage breakdown.
	Stages func() map[string]obs.StageSummary
	// Audit, if set, supplies the audit sink's per-outcome record counts
	// (obs.AuditLog.Counts); Run diffs it around the run so the report's
	// audit tallies can be cross-checked against the verdict tallies.
	Audit func() map[string]int
	// Fetch, if set, supplies the cumulative fetch-economy counters
	// (monitor path fetches, coalesced flights, provider cloud GETs); Run
	// diffs it around the run — warmup requests included, prepopulation
	// excluded (it runs before the capture).
	Fetch func() FetchEconomy
	// Drain, if set, is called after the workers finish and before any
	// counters are sampled — async post-verification targets block here
	// until every deferred verdict is recorded, so verdict tallies still
	// sum to the request count.
	Drain func()
	// AsyncPost, if set, supplies the monitor's async post pipeline
	// counters (monitor.AsyncPostStats), sampled after the drain for the
	// report's lag percentiles and shed counts.
	AsyncPost func() monitor.AsyncPostStats
}

// FetchEconomy is the cloud-read cost of a run: how many state paths the
// monitor fetched, how many of those fetches were coalesced onto another
// request's in-flight read, and how many REST GETs actually hit the cloud.
type FetchEconomy struct {
	// Requests counts verdicts with fetch accounting.
	Requests int `json:"requests"`
	// PathsFetched is the total provider path reads across them.
	PathsFetched int `json:"paths_fetched"`
	// Coalesced counts fetches served by another request's in-flight read.
	Coalesced int `json:"coalesced"`
	// CloudGets counts the provider's REST GETs (before retries).
	CloudGets int `json:"cloud_gets"`
}

func (f FetchEconomy) sub(before FetchEconomy) FetchEconomy {
	return FetchEconomy{
		Requests:     f.Requests - before.Requests,
		PathsFetched: f.PathsFetched - before.PathsFetched,
		Coalesced:    f.Coalesced - before.Coalesced,
		CloudGets:    f.CloudGets - before.CloudGets,
	}
}

// volumePool is the shared set of volume ids the workload operates on.
type volumePool struct {
	mu  sync.Mutex
	ids []string
}

func (p *volumePool) add(id string) {
	p.mu.Lock()
	p.ids = append(p.ids, id)
	p.mu.Unlock()
}

// pick returns a random id without removing it.
func (p *volumePool) pick(r *rand.Rand) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ids) == 0 {
		return "", false
	}
	return p.ids[r.Intn(len(p.ids))], true
}

// take removes and returns a random id.
func (p *volumePool) take(r *rand.Rand) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ids) == 0 {
		return "", false
	}
	i := r.Intn(len(p.ids))
	id := p.ids[i]
	p.ids[i] = p.ids[len(p.ids)-1]
	p.ids = p.ids[:len(p.ids)-1]
	return id, true
}

// missingVolumeID addresses a never-existing volume when the pool is
// drained, keeping the request flowing (the monitor evaluates the contract
// over OclUndefined state, a workload worth exercising).
const missingVolumeID = "vol-missing"

// sample is one recorded request.
type sample struct {
	op      string
	status  int
	latency time.Duration
	err     bool
}

// recorder accumulates per-worker samples without shared locks.
type recorder struct {
	samples []sample
}

func (rec *recorder) record(op string, status int, d time.Duration, errored bool) {
	rec.samples = append(rec.samples, sample{op: op, status: status, latency: d, err: errored})
}

// Run executes the scenario against the target and builds the report.
func Run(sc Scenario, tgt Target) (*Report, error) {
	if len(sc.Mix) == 0 {
		return nil, fmt.Errorf("loadgen: scenario %q has an empty mix", sc.Name)
	}
	total := 0
	for _, cell := range sc.Mix {
		if cell.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: %s has non-positive weight %d", cell.Name(), cell.Weight)
		}
		total += cell.Weight
	}
	clients := sc.Clients
	if clients <= 0 {
		clients = 8
	}
	if sc.Requests <= 0 && sc.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: scenario %q needs a Requests or Duration bound", sc.Name)
	}
	tenants := tgt.Tenants
	if len(tenants) == 0 {
		if tgt.ProjectID == "" {
			return nil, fmt.Errorf("loadgen: target has no project id")
		}
		tenants = []Tenant{{ProjectID: tgt.ProjectID, Tokens: tgt.Tokens}}
	}

	// One volume pool per tenant: ops on a tenant only ever address its
	// own volumes, so a fleet's disjoint project ownership holds.
	pools := make([]*volumePool, len(tenants))
	for i := range pools {
		pools[i] = &volumePool{}
	}
	prepopulate := sc.Prepopulate
	if prepopulate == 0 {
		prepopulate = 8
	}
	// Every tenant gets the full prepopulation so read/delete cells have
	// targets regardless of how the mix lands across tenants.
	for ti, tn := range tenants {
		admin := tenantClient(tgt, tn, RoleAdmin)
		for i := 0; i < prepopulate; i++ {
			id, status, err := createVolume(admin, tn.ProjectID, fmt.Sprintf("seed-%d", i))
			if err != nil && status == 0 {
				return nil, fmt.Errorf("loadgen: prepopulate %s: %w", tn.ProjectID, err)
			}
			if id != "" {
				pools[ti].add(id)
			}
		}
	}

	if tgt.Drain != nil {
		// Prepopulation's deferred post verdicts must record before the
		// baseline counters are sampled, or they land inside the run diff.
		tgt.Drain()
	}
	var before map[monitor.Outcome]int
	if tgt.Outcomes != nil {
		before = tgt.Outcomes()
	}
	var faultsBefore map[string]int
	if tgt.Faults != nil {
		faultsBefore = tgt.Faults()
	}
	var auditBefore map[string]int
	if tgt.Audit != nil {
		auditBefore = tgt.Audit()
	}
	var fetchBefore FetchEconomy
	if tgt.Fetch != nil {
		fetchBefore = tgt.Fetch()
	}

	var (
		issued   atomic.Int64
		deadline time.Time
	)
	if sc.Duration > 0 {
		deadline = time.Now().Add(sc.Duration)
	}

	// In the open loop a dispatcher feeds scheduled arrival times to the
	// workers; zero value means closed loop (workers self-pace).
	var arrivals chan time.Time
	if sc.Rate > 0 {
		arrivals = make(chan time.Time, clients*4)
		go dispatch(arrivals, sc.Rate, sc.Requests, deadline)
	}

	recorders := make([]*recorder, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	start := time.Now()
	for w := 0; w < clients; w++ {
		rec := &recorder{}
		recorders[w] = rec
		go func(w int, rec *recorder) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(sc.Seed + int64(w)*7919))
			wk := worker{
				sc:      sc,
				tgt:     tgt,
				tenants: tenants,
				pools:   pools,
				rng:     rng,
				rec:     rec,
				clients: make(map[string]*osclient.Client),
				weights: sc.Mix,
				total:   total,
			}
			wk.loop(&issued, deadline, arrivals)
		}(w, rec)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if tgt.Drain != nil {
		// Deferred post verdicts must land before the counter diffs; the
		// drain is outside the timed window — detection lag is reported
		// separately, not folded into throughput.
		tgt.Drain()
	}

	var verdicts map[string]int
	if tgt.Outcomes != nil {
		after := tgt.Outcomes()
		verdicts = diffOutcomes(before, after)
	}
	var injected map[string]int
	if tgt.Faults != nil {
		injected = diffCounts(faultsBefore, tgt.Faults())
	}

	rep := buildReport(sc, clients, elapsed, recorders, verdicts)
	rep.InjectedFaults = injected
	if tgt.Audit != nil {
		rep.Audit = diffCounts(auditBefore, tgt.Audit())
	}
	if tgt.Stages != nil {
		rep.Stages = tgt.Stages()
	}
	if tgt.Fetch != nil {
		f := tgt.Fetch().sub(fetchBefore)
		rep.Fetch = &f
	}
	if tgt.AsyncPost != nil {
		if st := tgt.AsyncPost(); st.Enqueued > 0 || st.Shed > 0 {
			rep.AsyncPost = &AsyncPostReport{
				Enqueued:       st.Enqueued,
				Shed:           st.Shed,
				LateViolations: st.LateViolations,
				LagP50US:       us(st.Lag.Quantile(0.50)),
				LagP95US:       us(st.Lag.Quantile(0.95)),
				LagP99US:       us(st.Lag.Quantile(0.99)),
			}
		}
	}
	return rep, nil
}

// dispatch schedules open-loop arrivals at the configured rate until the
// budget or deadline is exhausted, then closes the channel.
func dispatch(arrivals chan<- time.Time, rate float64, budget int, deadline time.Time) {
	interval := time.Duration(float64(time.Second) / rate)
	next := time.Now()
	for i := 0; budget <= 0 || i < budget; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		arrivals <- next
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	close(arrivals)
}

// tenantClient builds a fresh osclient for the role within the tenant
// (empty token when the role is unknown — the anonymous requester).
func tenantClient(tgt Target, tn Tenant, role string) *osclient.Client {
	return &osclient.Client{BaseURL: tgt.BaseURL, Token: tn.Tokens[role], HTTPClient: tgt.HTTPClient}
}

// worker is one concurrent client of the run.
type worker struct {
	sc      Scenario
	tgt     Target
	tenants []Tenant
	pools   []*volumePool
	rng     *rand.Rand
	rec     *recorder
	// clients caches one osclient per (role, tenant) so workers never
	// share token state; keyed "role|project".
	clients map[string]*osclient.Client
	weights []OpSpec
	total   int
}

// client returns the worker's cached client for the role within tenant ti.
func (wk *worker) client(ti int, role string) *osclient.Client {
	key := role + "|" + wk.tenants[ti].ProjectID
	c, ok := wk.clients[key]
	if !ok {
		c = tenantClient(wk.tgt, wk.tenants[ti], role)
		wk.clients[key] = c
	}
	return c
}

// loop issues requests until the budget, deadline or arrival stream ends.
func (wk *worker) loop(issued *atomic.Int64, deadline time.Time, arrivals <-chan time.Time) {
	for {
		var arrival time.Time
		if arrivals != nil {
			t, ok := <-arrivals
			if !ok {
				return
			}
			arrival = t
		}
		n := issued.Add(1)
		if wk.sc.Requests > 0 && n > int64(wk.sc.Requests) {
			return
		}
		if arrivals == nil && !deadline.IsZero() && time.Now().After(deadline) {
			return
		}
		cell := wk.pickOp()
		start := time.Now()
		status, err := wk.exec(cell)
		end := time.Now()
		latency := end.Sub(start)
		if arrivals != nil {
			// Open loop: charge queueing from the scheduled arrival.
			latency = end.Sub(arrival)
		}
		if int(n) > wk.sc.Warmup {
			wk.rec.record(cell.Name(), status, latency, err != nil && status == 0)
		}
	}
}

// pickOp draws a matrix cell by weight.
func (wk *worker) pickOp() OpSpec {
	n := wk.rng.Intn(wk.total)
	for _, cell := range wk.weights {
		n -= cell.Weight
		if n < 0 {
			return cell
		}
	}
	return wk.weights[len(wk.weights)-1]
}

// exec issues one request. A non-zero status with a *osclient.StatusError
// is a measured response (the monitor blocking a forbidden request is the
// workload behaving), not an error; only transport failures count as
// errors.
func (wk *worker) exec(cell OpSpec) (int, error) {
	ti := 0
	if len(wk.tenants) > 1 {
		ti = wk.rng.Intn(len(wk.tenants))
	}
	c := wk.client(ti, cell.Role)
	pid := wk.tenants[ti].ProjectID
	pool := wk.pools[ti]
	switch cell.Op {
	case OpGetVolume:
		id, ok := pool.pick(wk.rng)
		if !ok {
			id = missingVolumeID
		}
		return c.Do(http.MethodGet, "/projects/"+pid+"/volumes/"+id, nil, nil, nil)
	case OpCreateVolume:
		id, status, err := createVolume(c, pid, fmt.Sprintf("load-%d", wk.rng.Int63()))
		if id != "" {
			pool.add(id)
		}
		return status, err
	case OpUpdateVolume:
		id, ok := pool.pick(wk.rng)
		if !ok {
			id = missingVolumeID
		}
		in := map[string]map[string]any{"volume": {"name": fmt.Sprintf("ren-%d", wk.rng.Int63())}}
		return c.Do(http.MethodPut, "/projects/"+pid+"/volumes/"+id, in, nil, nil)
	case OpDeleteVolume:
		id, ok := pool.take(wk.rng)
		if !ok {
			id = missingVolumeID
		}
		status, err := c.Do(http.MethodDelete, "/projects/"+pid+"/volumes/"+id, nil, nil, nil)
		if err != nil && id != missingVolumeID {
			// The delete did not go through: keep the volume reachable.
			pool.add(id)
		}
		return status, err
	}
	return 0, fmt.Errorf("loadgen: unknown op %v", cell.Op)
}

// createVolume posts to the volume collection through the target and
// returns the created id (empty when the request was rejected or blocked).
func createVolume(c *osclient.Client, projectID, name string) (string, int, error) {
	in := map[string]map[string]any{"volume": {"name": name, "size": 1}}
	var out struct {
		Volume struct {
			ID string `json:"id"`
		} `json:"volume"`
	}
	status, err := c.Do(http.MethodPost, "/projects/"+projectID+"/volumes", in, &out, nil)
	if err != nil {
		return "", status, err
	}
	return out.Volume.ID, status, nil
}

// diffOutcomes subtracts the before counters from the after counters.
func diffOutcomes(before, after map[monitor.Outcome]int) map[string]int {
	out := make(map[string]int)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k.String()] = d
		}
	}
	return out
}

// diffCounts subtracts string-keyed counters (fault tallies).
func diffCounts(before, after map[string]int) map[string]int {
	out := make(map[string]int)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}
