package loadgen

import (
	"testing"
	"time"

	"cloudmon/internal/monitor"
)

// soakScenario is the mixed read/write matrix the -race soak drives: every
// operation × role cell that produces a distinct verdict class, including
// forbidden writes (Blocked in enforce mode) and anonymous reads.
func soakScenario(clients, requests int) Scenario {
	return Scenario{
		Name: "soak",
		Mix: []OpSpec{
			{Op: OpGetVolume, Role: RoleAdmin, Weight: 10},
			{Op: OpGetVolume, Role: RoleMember, Weight: 10},
			{Op: OpGetVolume, Role: RoleUser, Weight: 8},
			{Op: OpGetVolume, Role: RoleAnonymous, Weight: 2},
			{Op: OpCreateVolume, Role: RoleAdmin, Weight: 6},
			{Op: OpCreateVolume, Role: RoleMember, Weight: 4},
			{Op: OpCreateVolume, Role: RoleUser, Weight: 2},
			{Op: OpUpdateVolume, Role: RoleMember, Weight: 4},
			{Op: OpUpdateVolume, Role: RoleAnonymous, Weight: 1},
			{Op: OpDeleteVolume, Role: RoleAdmin, Weight: 6},
			{Op: OpDeleteVolume, Role: RoleUser, Weight: 2},
		},
		Clients:     clients,
		Requests:    requests,
		Warmup:      requests / 10,
		Prepopulate: 16,
		Seed:        time.Now().UnixNano(), // soak hunts races, not golden outputs
	}
}

// checkVerdictInvariants asserts the structural verdict-outcome invariants
// that must hold for every monitored request no matter how requests
// interleave. Concurrency can legitimately produce violation *outcomes*
// (the snapshot-forward-snapshot workflow is not atomic, so racing writers
// cause TOCTOU post-condition failures); what must never happen is an
// outcome that contradicts its own evidence.
func checkVerdictInvariants(t *testing.T, log []monitor.Verdict, mode monitor.Mode) {
	t.Helper()
	for i, v := range log {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Errorf("verdict %d (%s, outcome %s): "+format,
				append([]any{i, v.Trigger, v.Outcome}, args...)...)
		}
		switch v.Outcome {
		case monitor.Blocked:
			if mode != monitor.Enforce {
				fail("Blocked outside Enforce mode")
			}
			if v.Forwarded {
				fail("Blocked implies not Forwarded")
			}
			if v.PreOK {
				fail("Blocked implies pre-condition failed")
			}
			if v.BackendStatus != 0 {
				fail("Blocked implies no backend status, got %d", v.BackendStatus)
			}
		case monitor.OK:
			if !v.PreOK || !v.Forwarded {
				fail("OK implies PreOK && Forwarded (PreOK=%v Forwarded=%v)", v.PreOK, v.Forwarded)
			}
			if !v.PostOK {
				fail("OK implies PostOK")
			}
			if v.BackendStatus < 200 || v.BackendStatus > 299 {
				fail("OK implies 2xx backend, got %d", v.BackendStatus)
			}
		case monitor.Rejected:
			if v.PreOK {
				fail("Rejected implies pre-condition failed")
			}
			if !v.Forwarded {
				fail("Rejected implies Forwarded")
			}
			if v.BackendStatus >= 200 && v.BackendStatus <= 299 {
				fail("Rejected implies non-2xx backend, got %d", v.BackendStatus)
			}
		case monitor.ViolationForbiddenAccepted:
			if v.PreOK {
				fail("ViolationForbiddenAccepted implies pre-condition failed")
			}
			if !v.Forwarded {
				fail("ViolationForbiddenAccepted implies Forwarded")
			}
			if v.BackendStatus < 200 || v.BackendStatus > 299 {
				fail("ViolationForbiddenAccepted implies 2xx backend, got %d", v.BackendStatus)
			}
		case monitor.ViolationAllowedRejected:
			if !v.PreOK || !v.Forwarded {
				fail("ViolationAllowedRejected implies PreOK && Forwarded")
			}
			if v.BackendStatus >= 200 && v.BackendStatus <= 299 {
				fail("ViolationAllowedRejected implies non-2xx backend, got %d", v.BackendStatus)
			}
		case monitor.ViolationPostcondition:
			if !v.PreOK || !v.Forwarded {
				fail("ViolationPostcondition implies PreOK && Forwarded")
			}
			if v.PostOK {
				fail("ViolationPostcondition implies post-condition failed")
			}
		case monitor.Error:
			// The monitor itself failed; no cloud verdict is implied.
		default:
			fail("unknown outcome")
		}
	}
}

// runSoak deploys in process, hammers the monitor with ≥32 concurrent
// clients, and checks every recorded verdict. Run under -race this is the
// concurrency proof for the sharded log, the snapshot fan-out and the
// pre-state cache.
func runSoak(t *testing.T, opts DeployOptions, mode monitor.Mode) {
	t.Helper()
	clients, requests := 32, 4000
	if testing.Short() {
		requests = 1200
	}
	opts.Mode = mode
	opts.MaxLog = requests + 256 // retain every verdict for the invariant sweep
	dep, err := Deploy(opts)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(soakScenario(clients, requests), dep.Target)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Errorf("%d transport errors during soak", report.Errors)
	}
	log := dep.Sys.Monitor.Log()
	if len(log) == 0 {
		t.Fatal("no verdicts recorded")
	}
	checkVerdictInvariants(t, log, mode)

	// The sharded outcome counters must agree with the retained log.
	fromLog := make(map[monitor.Outcome]int)
	for _, v := range log {
		fromLog[v.Outcome]++
	}
	for outcome, n := range dep.Sys.Monitor.Outcomes() {
		if fromLog[outcome] != n {
			t.Errorf("outcome %s: counter %d, log %d", outcome, n, fromLog[outcome])
		}
	}
}

// TestSoakEnforce is the satellite -race soak: 32 concurrent clients, all
// verdict classes, serial snapshots.
func TestSoakEnforce(t *testing.T) {
	runSoak(t, DeployOptions{}, monitor.Enforce)
}

// TestSoakObserve repeats the soak in Observe (test-oracle) mode.
func TestSoakObserve(t *testing.T) {
	runSoak(t, DeployOptions{}, monitor.Observe)
}

// TestSoakHardened repeats the soak with every hot-path optimisation
// enabled at once: bounded parallel snapshots plus the pre-state cache.
func TestSoakHardened(t *testing.T) {
	runSoak(t, DeployOptions{
		ParallelSnapshots: true,
		SnapshotWorkers:   4,
		PreStateCacheTTL:  25 * time.Millisecond,
	}, monitor.Enforce)
}
