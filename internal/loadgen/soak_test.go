package loadgen

import (
	"strings"
	"testing"
	"time"

	"cloudmon/internal/faults"
	"cloudmon/internal/monitor"
	"cloudmon/internal/osclient"
)

// soakScenario is the mixed read/write matrix the -race soak drives: every
// operation × role cell that produces a distinct verdict class, including
// forbidden writes (Blocked in enforce mode) and anonymous reads.
func soakScenario(clients, requests int) Scenario {
	return Scenario{
		Name: "soak",
		Mix: []OpSpec{
			{Op: OpGetVolume, Role: RoleAdmin, Weight: 10},
			{Op: OpGetVolume, Role: RoleMember, Weight: 10},
			{Op: OpGetVolume, Role: RoleUser, Weight: 8},
			{Op: OpGetVolume, Role: RoleAnonymous, Weight: 2},
			{Op: OpCreateVolume, Role: RoleAdmin, Weight: 6},
			{Op: OpCreateVolume, Role: RoleMember, Weight: 4},
			{Op: OpCreateVolume, Role: RoleUser, Weight: 2},
			{Op: OpUpdateVolume, Role: RoleMember, Weight: 4},
			{Op: OpUpdateVolume, Role: RoleAnonymous, Weight: 1},
			{Op: OpDeleteVolume, Role: RoleAdmin, Weight: 6},
			{Op: OpDeleteVolume, Role: RoleUser, Weight: 2},
		},
		Clients:     clients,
		Requests:    requests,
		Warmup:      requests / 10,
		Prepopulate: 16,
		Seed:        time.Now().UnixNano(), // soak hunts races, not golden outputs
	}
}

// checkVerdictInvariants asserts the structural verdict-outcome invariants
// that must hold for every monitored request no matter how requests
// interleave. Concurrency can legitimately produce violation *outcomes*
// (the snapshot-forward-snapshot workflow is not atomic, so racing writers
// cause TOCTOU post-condition failures); what must never happen is an
// outcome that contradicts its own evidence.
func checkVerdictInvariants(t *testing.T, log []monitor.Verdict, mode monitor.Mode, policy monitor.FailPolicy) {
	t.Helper()
	if policy == 0 {
		policy = monitor.FailClosed
	}
	for i, v := range log {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Errorf("verdict %d (%s, outcome %s): "+format,
				append([]any{i, v.Trigger, v.Outcome}, args...)...)
		}
		switch v.Outcome {
		case monitor.Blocked:
			if mode != monitor.Enforce {
				fail("Blocked outside Enforce mode")
			}
			if v.Forwarded {
				fail("Blocked implies not Forwarded")
			}
			if v.PreOK {
				fail("Blocked implies pre-condition failed")
			}
			if v.BackendStatus != 0 {
				fail("Blocked implies no backend status, got %d", v.BackendStatus)
			}
		case monitor.OK:
			if !v.PreOK || !v.Forwarded {
				fail("OK implies PreOK && Forwarded (PreOK=%v Forwarded=%v)", v.PreOK, v.Forwarded)
			}
			if !v.PostOK {
				fail("OK implies PostOK")
			}
			if v.BackendStatus < 200 || v.BackendStatus > 299 {
				fail("OK implies 2xx backend, got %d", v.BackendStatus)
			}
		case monitor.Rejected:
			if v.PreOK {
				fail("Rejected implies pre-condition failed")
			}
			if !v.Forwarded {
				fail("Rejected implies Forwarded")
			}
			if v.BackendStatus >= 200 && v.BackendStatus <= 299 {
				fail("Rejected implies non-2xx backend, got %d", v.BackendStatus)
			}
		case monitor.ViolationForbiddenAccepted:
			if v.PreOK {
				fail("ViolationForbiddenAccepted implies pre-condition failed")
			}
			if !v.Forwarded {
				fail("ViolationForbiddenAccepted implies Forwarded")
			}
			if v.BackendStatus < 200 || v.BackendStatus > 299 {
				fail("ViolationForbiddenAccepted implies 2xx backend, got %d", v.BackendStatus)
			}
		case monitor.ViolationAllowedRejected:
			if !v.PreOK || !v.Forwarded {
				fail("ViolationAllowedRejected implies PreOK && Forwarded")
			}
			if v.BackendStatus >= 200 && v.BackendStatus <= 299 {
				fail("ViolationAllowedRejected implies non-2xx backend, got %d", v.BackendStatus)
			}
		case monitor.ViolationPostcondition:
			if !v.PreOK || !v.Forwarded {
				fail("ViolationPostcondition implies PreOK && Forwarded")
			}
			if v.PostOK {
				fail("ViolationPostcondition implies post-condition failed")
			}
		case monitor.Error:
			// The monitor itself failed; no cloud verdict is implied. But a
			// fail-closed monitor must not have let the request through when
			// the pre-state snapshot was the failure.
			if policy == monitor.FailClosed &&
				strings.HasPrefix(v.Detail, "pre-state snapshot:") && v.Forwarded {
				fail("fail-closed forwarded a request whose pre-state snapshot failed")
			}
		case monitor.Unverified:
			// Shed async captures are the one legitimate Unverified under
			// fail-closed: the queue, not the fail policy, declined the check.
			if policy == monitor.FailClosed && !v.Shed {
				fail("Unverified under fail-closed")
			}
			if !v.Forwarded {
				fail("Unverified implies Forwarded (the gap is a forwarded, unchecked request)")
			}
		default:
			fail("unknown outcome")
		}
		if v.Shed && !v.Late {
			fail("Shed implies Late (a shed verdict is a deferred one)")
		}
		if v.Late {
			if v.Returned.IsZero() {
				fail("Late verdict without a response-return timestamp")
			}
			if v.DetectionLag < 0 {
				fail("negative detection lag %v", v.DetectionLag)
			}
		}
	}
}

// runSoak deploys in process, hammers the monitor with ≥32 concurrent
// clients, and checks every recorded verdict. Run under -race this is the
// concurrency proof for the sharded log, the snapshot fan-out and the
// pre-state cache.
func runSoak(t *testing.T, opts DeployOptions, mode monitor.Mode) *Deployment {
	t.Helper()
	clients, requests := 32, 4000
	if testing.Short() {
		requests = 1200
	}
	opts.Mode = mode
	opts.MaxLog = requests + 256 // retain every verdict for the invariant sweep
	dep, err := Deploy(opts)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(soakScenario(clients, requests), dep.Target)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Errorf("%d transport errors during soak", report.Errors)
	}
	log := dep.Sys.Monitor.Log()
	if len(log) == 0 {
		t.Fatal("no verdicts recorded")
	}
	checkVerdictInvariants(t, log, mode, opts.FailPolicy)

	// The sharded outcome counters must agree with the retained log.
	fromLog := make(map[monitor.Outcome]int)
	for _, v := range log {
		fromLog[v.Outcome]++
	}
	for outcome, n := range dep.Sys.Monitor.Outcomes() {
		if fromLog[outcome] != n {
			t.Errorf("outcome %s: counter %d, log %d", outcome, n, fromLog[outcome])
		}
	}
	return dep
}

// TestSoakEnforce is the satellite -race soak: 32 concurrent clients, all
// verdict classes, serial snapshots.
func TestSoakEnforce(t *testing.T) {
	runSoak(t, DeployOptions{}, monitor.Enforce)
}

// TestSoakObserve repeats the soak in Observe (test-oracle) mode.
func TestSoakObserve(t *testing.T) {
	runSoak(t, DeployOptions{}, monitor.Observe)
}

// TestSoakHardened repeats the soak with every hot-path optimisation
// enabled at once: bounded parallel snapshots plus the pre-state cache.
func TestSoakHardened(t *testing.T) {
	runSoak(t, DeployOptions{
		ParallelSnapshots: true,
		SnapshotWorkers:   4,
		PreStateCacheTTL:  25 * time.Millisecond,
	}, monitor.Enforce)
}

// TestSoakAsyncPost is the async-pipeline concurrency soak: 32 clients,
// deferred post verification under the block policy. Run under -race this
// proves the capture hand-off, the write fence, the worker pool and the
// pending accounting against the full mixed matrix; the drain guarantee
// is checked by the counter cross-check in runSoak (Run drains before
// diffing).
func TestSoakAsyncPost(t *testing.T) {
	dep := runSoak(t, DeployOptions{Post: monitor.PostAsync}, monitor.Enforce)
	defer dep.Close()
	st := dep.Sys.Monitor.AsyncPostStats()
	if st.Enqueued == 0 {
		t.Fatal("async soak enqueued nothing; the pipeline is not wired in")
	}
	if st.Pending != 0 {
		t.Fatalf("pending %d after drained run", st.Pending)
	}
	if st.Shed != 0 {
		t.Fatalf("block policy shed %d captures", st.Shed)
	}
	if st.Lag.Count != st.Enqueued {
		t.Fatalf("lag histogram holds %d samples for %d enqueued", st.Lag.Count, st.Enqueued)
	}
}

// chaosOpts returns DeployOptions under the checked-in ~20% mixed-fault
// profile, with a fast retry policy so the soak finishes quickly while
// still exercising the backoff and per-attempt-deadline paths.
func chaosOpts(t *testing.T, policy monitor.FailPolicy) DeployOptions {
	t.Helper()
	profile, err := faults.LoadProfile("../faults/testdata/chaos.json")
	if err != nil {
		t.Fatal(err)
	}
	return DeployOptions{
		FailPolicy: policy,
		Faults:     profile,
		Retry: osclient.RetryPolicy{
			MaxAttempts:       2,
			BaseDelay:         time.Millisecond,
			MaxDelay:          5 * time.Millisecond,
			PerAttemptTimeout: 500 * time.Millisecond,
		},
	}
}

// TestSoakChaosFailClosed is the acceptance soak: ~20% of cloud calls fail
// while a fail-closed monitor takes the full mixed matrix. The invariant
// sweep proves no request whose pre-state snapshot failed was forwarded
// and no Unverified verdict exists; the counter cross-check proves the
// verdict counters still sum to the log under chaos.
func TestSoakChaosFailClosed(t *testing.T) {
	dep := runSoak(t, chaosOpts(t, monitor.FailClosed), monitor.Enforce)
	if dep.Injector == nil || dep.Injector.Total() == 0 {
		t.Fatal("chaos soak injected no faults; the profile is not wired in")
	}
	if n := dep.Sys.Monitor.Outcomes()[monitor.Unverified]; n != 0 {
		t.Fatalf("fail-closed recorded %d Unverified verdicts, want 0", n)
	}
}

// TestSoakChaosFailOpen repeats the chaos soak with availability-first
// policy: snapshot failures must forward and be recorded as Unverified
// (asserted per-verdict by checkVerdictInvariants).
func TestSoakChaosFailOpen(t *testing.T) {
	dep := runSoak(t, chaosOpts(t, monitor.FailOpen), monitor.Enforce)
	if dep.Injector == nil || dep.Injector.Total() == 0 {
		t.Fatal("chaos soak injected no faults; the profile is not wired in")
	}
}

// TestSoakChaosAsyncFailOpen combines the ~20% fault profile with async
// post verification: snapshot faults now fire on worker goroutines too,
// so late verdicts carry Error/Unverified outcomes and the invariant
// sweep (including the late-timestamp checks) runs over all of them.
func TestSoakChaosAsyncFailOpen(t *testing.T) {
	opts := chaosOpts(t, monitor.FailOpen)
	opts.Post = monitor.PostAsync
	dep := runSoak(t, opts, monitor.Enforce)
	defer dep.Close()
	if dep.Injector == nil || dep.Injector.Total() == 0 {
		t.Fatal("chaos soak injected no faults; the profile is not wired in")
	}
	if st := dep.Sys.Monitor.AsyncPostStats(); st.Enqueued == 0 || st.Pending != 0 {
		t.Fatalf("async stats after chaos soak: %+v", st)
	}
}

// TestSoakChaosAsyncShed saturates a one-slot queue with one worker under
// chaos and the shed policy: every rejected capture must surface as a
// shed Unverified verdict — the only Unverified a fail-closed monitor may
// record — and the counts must agree exactly.
func TestSoakChaosAsyncShed(t *testing.T) {
	opts := chaosOpts(t, monitor.FailClosed)
	opts.Post = monitor.PostAsync
	opts.PostQueueCap = 1
	opts.PostWorkers = 1
	opts.PostBackpressure = monitor.BackpressureShed
	dep := runSoak(t, opts, monitor.Enforce)
	defer dep.Close()
	st := dep.Sys.Monitor.AsyncPostStats()
	if st.Shed == 0 {
		t.Fatal("one-slot queue under 32 clients shed nothing")
	}
	if got := dep.Sys.Monitor.Outcomes()[monitor.Unverified]; got != int(st.Shed) {
		t.Fatalf("Unverified verdicts %d, shed counter %d", got, st.Shed)
	}
}

// TestSoakChaosDegrade adds the stale-cache fallback on top of chaos: the
// pre-state cache both serves the degrade path and races generation
// invalidation against the fault-ridden snapshot fan-out.
func TestSoakChaosDegrade(t *testing.T) {
	opts := chaosOpts(t, monitor.Degrade)
	opts.PreStateCacheTTL = 25 * time.Millisecond
	runSoak(t, opts, monitor.Enforce)
}
