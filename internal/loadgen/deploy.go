package loadgen

import (
	"fmt"
	"net/http"
	"time"

	"cloudmon/internal/core"
	"cloudmon/internal/faults"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// DeployOptions configures the in-process deployment.
type DeployOptions struct {
	// Mode defaults to monitor.Enforce.
	Mode monitor.Mode
	// Level defaults to monitor.CheckFull.
	Level monitor.CheckLevel
	// Eval selects the evaluation engine (default monitor.EvalCompiled;
	// monitor.EvalLazy re-walks the OCL trees, monitor.EvalEager restores
	// whole-contract snapshots — the A/B knobs behind EXPERIMENTS.md
	// E15/E17).
	Eval monitor.EvalMode
	// NoFacts disables the lazy engine's compile-time fact pruning (the
	// A/B knob behind EXPERIMENTS.md E16).
	NoFacts bool
	// FailPolicy decides the monitor's verdict when a snapshot fails
	// (default monitor.FailClosed; Degrade needs PreStateCacheTTL).
	FailPolicy monitor.FailPolicy
	// Post selects when post-conditions are verified (default
	// monitor.PostSync; PostAsync defers them to a bounded worker queue).
	Post monitor.PostMode
	// PostQueueCap / PostWorkers / PostBackpressure tune the async post
	// pipeline (see the matching monitor.Config fields).
	PostQueueCap     int
	PostWorkers      int
	PostBackpressure monitor.BackpressurePolicy
	// ParallelSnapshots enables the provider's bounded fan-out.
	ParallelSnapshots bool
	// SnapshotWorkers bounds the fan-out pool (0 = default).
	SnapshotWorkers int
	// PreStateCacheTTL enables the monitor's pre-state read cache.
	PreStateCacheTTL time.Duration
	// DegradeTTL bounds the Degrade policy's stale-cache window (0 =
	// monitor's default of 10 × PreStateCacheTTL).
	DegradeTTL time.Duration
	// CloudTimeout is the shared deadline knob for both cloud-facing
	// paths (0 = default).
	CloudTimeout time.Duration
	// Retry tunes the snapshot provider's backoff loop.
	Retry osclient.RetryPolicy
	// Breaker enables the snapshot circuit breaker.
	Breaker *osclient.BreakerConfig
	// Faults, when non-nil, injects this fault profile into all
	// monitor->cloud traffic (snapshots and forwards) — chaos runs.
	// Role authentication at deploy time bypasses the injector, so a
	// hostile profile cannot fail the deployment itself.
	Faults *faults.Profile
	// QuotaVolumes is the project's volume quota (default 1e6 so the
	// workload never trips quota pre-conditions unless asked to).
	QuotaVolumes int
	// MaxLog bounds the monitor's verdict log (default monitor's 1024;
	// soak tests raise it to retain every verdict).
	MaxLog int
	// AuditDir, when non-empty, opens an obs.AuditLog there and wires it
	// into the monitor; every violation and Unverified outcome of the run
	// lands in the trail. Close the Deployment to flush it.
	AuditDir string
	// AuditMaxBytes bounds audit segments (0 = obs.DefaultAuditMaxBytes).
	AuditMaxBytes int64
}

// Deployment is a ready-to-drive in-process cloud + monitor pair.
type Deployment struct {
	// Cloud is the simulated OpenStack deployment.
	Cloud *openstack.Cloud
	// Sys is the assembled monitor pipeline.
	Sys *core.System
	// ProjectID is the seeded project.
	ProjectID string
	// Target drives the monitor proxy with per-role tokens.
	Target Target
	// Injector is the fault injector perturbing monitor->cloud traffic
	// (nil unless DeployOptions.Faults was set).
	Injector *faults.Injector
	// Audit is the monitor's audit sink (nil unless DeployOptions.AuditDir
	// was set).
	Audit *obs.AuditLog
}

// Close drains the monitor's async post pipeline (so every deferred
// verdict — including its audit record — lands), then flushes and closes
// the deployment's audit sink, if any.
func (d *Deployment) Close() error {
	if d.Sys != nil && d.Sys.Monitor != nil {
		d.Sys.Monitor.Close()
	}
	if d.Audit != nil {
		return d.Audit.Close()
	}
	return nil
}

// Deploy builds the paper's example deployment in process — the simulated
// cloud seeded with Table I's role groups and one user per role — wires
// the monitor over an in-memory HTTP transport, and authenticates one
// client token per role.
func Deploy(opts DeployOptions) (*Deployment, error) {
	quota := opts.QuotaVolumes
	if quota <= 0 {
		quota = 1000000
	}
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "loadgen",
		Quota:       cinder.QuotaSet{Volumes: quota, Gigabytes: 1 << 30},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw", Group: paper.GroupServiceArchitect},
			{Name: "carol", Password: "pw", Group: paper.GroupBusinessAnalyst},
			{Name: "cm-svc", Password: "pw", Group: paper.GroupProjAdministrator},
		},
	})
	cloudHTTP := httpkit.HandlerClient(cloud)
	var inj *faults.Injector
	monitorHTTP := cloudHTTP
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("loadgen: deploy: %w", err)
		}
		inj = faults.NewInjector(opts.Faults)
		monitorHTTP = &http.Client{
			Transport: inj.RoundTripper(httpkit.HandlerRoundTripper(cloud)),
		}
	}
	var audit *obs.AuditLog
	if opts.AuditDir != "" {
		var err error
		audit, err = obs.OpenAuditLog(opts.AuditDir, opts.AuditMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("loadgen: deploy: %w", err)
		}
	}
	sys, err := core.Build(core.Options{
		Model:    paper.CinderModel(),
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw", ProjectID: seed.ProjectID,
		},
		Mode:              opts.Mode,
		Level:             opts.Level,
		Eval:              opts.Eval,
		NoFacts:           opts.NoFacts,
		FailPolicy:        opts.FailPolicy,
		Post:              opts.Post,
		PostQueueCap:      opts.PostQueueCap,
		PostWorkers:       opts.PostWorkers,
		PostBackpressure:  opts.PostBackpressure,
		CloudTimeout:      opts.CloudTimeout,
		Retry:             opts.Retry,
		Breaker:           opts.Breaker,
		ParallelSnapshots: opts.ParallelSnapshots,
		SnapshotWorkers:   opts.SnapshotWorkers,
		PreStateCacheTTL:  opts.PreStateCacheTTL,
		DegradeTTL:        opts.DegradeTTL,
		MaxLog:            opts.MaxLog,
		HTTPClient:        monitorHTTP,
		Audit:             audit,
	})
	if err != nil {
		if audit != nil {
			audit.Close()
		}
		return nil, fmt.Errorf("loadgen: deploy: %w", err)
	}
	tokens := map[string]string{RoleAnonymous: ""}
	for role, user := range map[string]string{RoleAdmin: "alice", RoleMember: "bob", RoleUser: "carol"} {
		auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
		tok, err := auth.Authenticate(user, "pw", seed.ProjectID)
		if err != nil {
			return nil, fmt.Errorf("loadgen: authenticate %s: %w", user, err)
		}
		tokens[role] = tok
	}
	tgt := Target{
		BaseURL:    "http://monitor.internal",
		HTTPClient: httpkit.HandlerClient(sys.Monitor),
		ProjectID:  seed.ProjectID,
		Tokens:     tokens,
		Outcomes:   sys.Monitor.Outcomes,
		Stages:     sys.Monitor.StageSummaries,
		Fetch: func() FetchEconomy {
			fs := sys.Monitor.FetchStats()
			return FetchEconomy{
				Requests:     int(fs.Requests),
				PathsFetched: int(fs.PathsFetched),
				Coalesced:    int(fs.Coalesced),
				CloudGets:    int(sys.Provider.Stats().Gets),
			}
		},
	}
	if inj != nil {
		tgt.Faults = inj.Counts
	}
	if opts.Post == monitor.PostAsync {
		tgt.Drain = sys.Monitor.DrainPost
		tgt.AsyncPost = sys.Monitor.AsyncPostStats
	}
	if audit != nil {
		tgt.Audit = func() map[string]int {
			out := make(map[string]int)
			for k, v := range audit.Counts() {
				out[k] = int(v)
			}
			return out
		}
	}
	return &Deployment{
		Cloud:     cloud,
		Sys:       sys,
		ProjectID: seed.ProjectID,
		Target:    tgt,
		Injector:  inj,
		Audit:     audit,
	}, nil
}
