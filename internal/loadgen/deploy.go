package loadgen

import (
	"fmt"
	"time"

	"cloudmon/internal/core"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// DeployOptions configures the in-process deployment.
type DeployOptions struct {
	// Mode defaults to monitor.Enforce.
	Mode monitor.Mode
	// Level defaults to monitor.CheckFull.
	Level monitor.CheckLevel
	// ParallelSnapshots enables the provider's bounded fan-out.
	ParallelSnapshots bool
	// SnapshotWorkers bounds the fan-out pool (0 = default).
	SnapshotWorkers int
	// PreStateCacheTTL enables the monitor's pre-state read cache.
	PreStateCacheTTL time.Duration
	// QuotaVolumes is the project's volume quota (default 1e6 so the
	// workload never trips quota pre-conditions unless asked to).
	QuotaVolumes int
	// MaxLog bounds the monitor's verdict log (default monitor's 1024;
	// soak tests raise it to retain every verdict).
	MaxLog int
}

// Deployment is a ready-to-drive in-process cloud + monitor pair.
type Deployment struct {
	// Cloud is the simulated OpenStack deployment.
	Cloud *openstack.Cloud
	// Sys is the assembled monitor pipeline.
	Sys *core.System
	// ProjectID is the seeded project.
	ProjectID string
	// Target drives the monitor proxy with per-role tokens.
	Target Target
}

// Deploy builds the paper's example deployment in process — the simulated
// cloud seeded with Table I's role groups and one user per role — wires
// the monitor over an in-memory HTTP transport, and authenticates one
// client token per role.
func Deploy(opts DeployOptions) (*Deployment, error) {
	quota := opts.QuotaVolumes
	if quota <= 0 {
		quota = 1000000
	}
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "loadgen",
		Quota:       cinder.QuotaSet{Volumes: quota, Gigabytes: 1 << 30},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw", Group: paper.GroupServiceArchitect},
			{Name: "carol", Password: "pw", Group: paper.GroupBusinessAnalyst},
			{Name: "cm-svc", Password: "pw", Group: paper.GroupProjAdministrator},
		},
	})
	cloudHTTP := httpkit.HandlerClient(cloud)
	sys, err := core.Build(core.Options{
		Model:    paper.CinderModel(),
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw", ProjectID: seed.ProjectID,
		},
		Mode:              opts.Mode,
		Level:             opts.Level,
		ParallelSnapshots: opts.ParallelSnapshots,
		SnapshotWorkers:   opts.SnapshotWorkers,
		PreStateCacheTTL:  opts.PreStateCacheTTL,
		MaxLog:            opts.MaxLog,
		HTTPClient:        cloudHTTP,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: deploy: %w", err)
	}
	tokens := map[string]string{RoleAnonymous: ""}
	for role, user := range map[string]string{RoleAdmin: "alice", RoleMember: "bob", RoleUser: "carol"} {
		auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
		tok, err := auth.Authenticate(user, "pw", seed.ProjectID)
		if err != nil {
			return nil, fmt.Errorf("loadgen: authenticate %s: %w", user, err)
		}
		tokens[role] = tok
	}
	return &Deployment{
		Cloud:     cloud,
		Sys:       sys,
		ProjectID: seed.ProjectID,
		Target: Target{
			BaseURL:    "http://monitor.internal",
			HTTPClient: httpkit.HandlerClient(sys.Monitor),
			ProjectID:  seed.ProjectID,
			Tokens:     tokens,
			Outcomes:   sys.Monitor.Outcomes,
		},
	}, nil
}
