package osclient

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) by callers that shed a request
// because the breaker is open — the cloud is down and probing it again
// immediately would only add load and latency.
var ErrCircuitOpen = errors.New("osclient: circuit breaker open")

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the run of consecutive infrastructure failures
	// that opens the circuit (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before letting probe
	// traffic through (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probes the half-open state
	// admits (default 1).
	HalfOpenProbes int
}

// withDefaults fills unset knobs.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker state names.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// Breaker is a small three-state circuit breaker for the snapshot path:
// closed passes everything, a run of consecutive infrastructure failures
// opens it, and after a cooldown it half-opens to admit a bounded number
// of probes — one success closes it again, one failure re-opens it.
// Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    string
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	inflight int       // admitted probes while half-open
	shed     uint64    // requests rejected while open

	// now is the clock (tests override it).
	now func() time.Time
}

// NewBreaker builds a breaker from the config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), state: StateClosed, now: time.Now}
}

// Allow reports whether a request may proceed. A false return means the
// caller must fail fast with ErrCircuitOpen (the request was shed).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = StateHalfOpen
			b.inflight = 1
			return true
		}
		b.shed++
		return false
	default: // half-open
		if b.inflight < b.cfg.HalfOpenProbes {
			b.inflight++
			return true
		}
		b.shed++
		return false
	}
}

// Record reports an attempt's outcome. Only infrastructure failures count
// against the circuit (pass Infrastructure(err) or equivalent); API-level
// answers like 404 are successes from the breaker's point of view.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.open()
		}
	case StateHalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		if ok {
			b.state = StateClosed
			b.fails = 0
			return
		}
		b.open()
	case StateOpen:
		// A late result from before the circuit opened; nothing to do.
	}
}

// open transitions to the open state; callers hold the lock.
func (b *Breaker) open() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.fails = 0
	b.inflight = 0
}

// State returns the current state name.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Shed returns how many requests the breaker has rejected so far.
func (b *Breaker) Shed() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shed
}
