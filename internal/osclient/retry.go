package osclient

import (
	"errors"
	"math/rand"
	"net/http"
	"time"
)

// RetryPolicy configures the exponential-backoff retry loops that sit on
// top of the client (the osbinding snapshot provider is the main user).
// The zero value means "use the defaults"; explicit fields override.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 500ms).
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt (default 4).
	Multiplier float64
	// Jitter widens each sleep to [d*(1-Jitter), d*(1+Jitter)] so
	// synchronized retries don't stampede a recovering cloud
	// (default 0.5; set negative for none).
	Jitter float64
	// PerAttemptTimeout bounds each individual attempt with a context
	// deadline (default httpkit.DefaultCloudTimeout via the client; zero
	// leaves the client's own Timeout in charge).
	PerAttemptTimeout time.Duration
	// Budget caps the whole loop — attempts plus backoff sleeps — in
	// wall-clock time. Zero means no budget beyond MaxAttempts.
	Budget time.Duration
}

// Default-policy knobs.
const (
	defaultRetryAttempts   = 3
	defaultRetryBase       = 10 * time.Millisecond
	defaultRetryMax        = 500 * time.Millisecond
	defaultRetryMultiplier = 4.0
	defaultRetryJitter     = 0.5
)

// WithDefaults fills unset fields with the default policy.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultRetryBase
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultRetryMax
	}
	if p.Multiplier <= 1 {
		p.Multiplier = defaultRetryMultiplier
	}
	if p.Jitter == 0 {
		p.Jitter = defaultRetryJitter
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Backoff returns the sleep before attempt+1 (attempt counts from 1), with
// jitter drawn from rng (nil uses the global source).
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	p = p.WithDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		f := rand.Float64
		if rng != nil {
			f = rng.Float64
		}
		d *= 1 + p.Jitter*(2*f()-1)
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// IdempotentMethod reports whether re-sending the method can never apply
// an effect twice. Deliberately conservative: DELETE and PUT are
// idempotent by HTTP semantics, but re-sending them changes the observed
// response (a second DELETE answers 404) and the monitor's post-state, so
// only the read methods qualify.
func IdempotentMethod(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodOptions:
		return true
	}
	return false
}

// Retryable classifies err for a retry loop driving the given method.
//
// A 401 StatusError is always retryable: the cloud's auth middleware
// rejected the token before the operation body was acted on, so the
// failure is provably pre-application — re-sending (after re-auth) cannot
// double-apply, even for a POST. Server-side 5xx and 429 answers, and
// transport-level failures (resets, timeouts, truncated bodies), are
// retryable only for idempotent methods: a write interrupted mid-flight
// may already have been applied, and blindly re-sending it is the
// double-apply bug this function exists to prevent.
func Retryable(err error, method string) bool {
	return RetryableFor(err, IdempotentMethod(method))
}

// RetryableFor is Retryable with the idempotency decided by the caller
// (closure-style retry loops know whether their operation is a read).
func RetryableFor(err error, idempotent bool) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		if se.Status == http.StatusUnauthorized {
			return true
		}
		switch se.Status {
		case http.StatusTooManyRequests,
			http.StatusInternalServerError,
			http.StatusBadGateway,
			http.StatusServiceUnavailable,
			http.StatusGatewayTimeout:
			return idempotent
		}
		return false
	}
	// Transport failure or undecodable response: the request may or may
	// not have been applied.
	return idempotent
}

// Infrastructure reports whether err signals cloud-infrastructure trouble
// (the kind a circuit breaker should count) rather than a meaningful API
// answer like 404 or 403.
func Infrastructure(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500 || se.Status == http.StatusTooManyRequests
	}
	return true
}
