package osclient

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"
)

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.MaxAttempts != 3 || p.BaseDelay != 10*time.Millisecond || p.MaxDelay != 500*time.Millisecond {
		t.Fatalf("defaults = %+v", p)
	}
	if p.Multiplier != 4.0 || p.Jitter != 0.5 {
		t.Fatalf("defaults = %+v", p)
	}
	custom := RetryPolicy{MaxAttempts: 7, Jitter: -1}.WithDefaults()
	if custom.MaxAttempts != 7 {
		t.Fatalf("explicit MaxAttempts overridden: %+v", custom)
	}
	if custom.Jitter != 0 {
		t.Fatalf("negative Jitter should mean none, got %v", custom.Jitter)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
		Multiplier: 4, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond,  // attempt 1
		40 * time.Millisecond,  // attempt 2
		100 * time.Millisecond, // attempt 3: 160ms capped
		100 * time.Millisecond, // stays capped
	}
	for i, w := range want {
		if got := p.Backoff(i+1, nil); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterStaysBounded(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Multiplier: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(1))
	lo, hi := 50*time.Millisecond, 150*time.Millisecond
	varied := false
	first := p.Backoff(1, rng)
	for i := 0; i < 200; i++ {
		d := p.Backoff(1, rng)
		if d < lo || d > hi {
			t.Fatalf("jittered backoff %v outside [%v, %v]", d, lo, hi)
		}
		if d != first {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced a constant backoff")
	}
}

func TestIdempotentMethod(t *testing.T) {
	for _, m := range []string{http.MethodGet, http.MethodHead, http.MethodOptions} {
		if !IdempotentMethod(m) {
			t.Errorf("%s should be idempotent", m)
		}
	}
	// PUT and DELETE are idempotent in HTTP but re-sending them changes
	// the observed response and post-state, so the retry loop treats them
	// as writes.
	for _, m := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
		if IdempotentMethod(m) {
			t.Errorf("%s must not be auto-retried", m)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	status := func(code int) error { return &StatusError{Status: code, Message: "x"} }
	wrapped := fmt.Errorf("resolve: %w", status(503))
	transport := errors.New("connection reset")

	cases := []struct {
		name       string
		err        error
		idempotent bool
		want       bool
	}{
		{"401 on a write is pre-application, retryable", status(401), false, true},
		{"401 on a read", status(401), true, true},
		{"503 on a read", status(503), true, true},
		{"503 on a write may have applied", status(503), false, false},
		{"wrapped 503 on a read", wrapped, true, true},
		{"429 on a read", status(429), true, true},
		{"404 is an answer, not a failure", status(404), true, false},
		{"403 is an answer", status(403), true, false},
		{"transport error on a read", transport, true, true},
		{"transport error on a write may have applied", transport, false, false},
		{"nil error", nil, true, false},
	}
	for _, tc := range cases {
		if got := RetryableFor(tc.err, tc.idempotent); got != tc.want {
			t.Errorf("%s: RetryableFor = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !Retryable(status(500), http.MethodGet) || Retryable(status(500), http.MethodPost) {
		t.Error("Retryable must derive idempotency from the method")
	}
}

func TestInfrastructureClassification(t *testing.T) {
	status := func(code int) error { return &StatusError{Status: code, Message: "x"} }
	if !Infrastructure(status(503)) || !Infrastructure(status(429)) || !Infrastructure(errors.New("reset")) {
		t.Error("5xx/429/transport must count as infrastructure failures")
	}
	if Infrastructure(status(404)) || Infrastructure(status(403)) || Infrastructure(nil) {
		t.Error("API answers (and nil) must not trip the breaker")
	}
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.Record(false)
	}
	// A success resets the run.
	b.Allow()
	b.Record(true)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.State() != StateOpen {
		t.Fatalf("state %s after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	if b.Shed() != 1 {
		t.Fatalf("Shed() = %d, want 1", b.Shed())
	}
}

func TestBreakerHalfOpenProbeLifecycle(t *testing.T) {
	clock := time.Now()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, HalfOpenProbes: 1})
	b.now = func() time.Time { return clock }

	b.Allow()
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatalf("state %s, want open", b.State())
	}

	clock = clock.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: a probe must be admitted")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe exceeded HalfOpenProbes")
	}

	// Probe fails: back to open, full cooldown again.
	b.Record(false)
	if b.State() != StateOpen || b.Allow() {
		t.Fatal("failed probe must reopen the circuit")
	}

	// Next cooldown, successful probe closes it.
	clock = clock.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted after second cooldown")
	}
	b.Record(true)
	if b.State() != StateClosed {
		t.Fatalf("state %s after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
}
