package osclient

import (
	"net/http"
	"testing"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/paper"
)

// wiredCloud returns a client wired in memory to a seeded cloud.
func wiredCloud(t *testing.T) (*Client, string) {
	t.Helper()
	cloud := openstack.New(openstack.Config{})
	res := cloud.ApplySeed(openstack.Seed{
		ProjectName: "p",
		Quota:       cinder.QuotaSet{Volumes: 5, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw", Group: paper.GroupProjAdministrator},
		},
	})
	c := New("http://cloud.internal")
	c.HTTPClient = httpkit.HandlerClient(cloud)
	return c, res.ProjectID
}

func TestAuthenticateInstallsToken(t *testing.T) {
	c, pid := wiredCloud(t)
	tok, err := c.Authenticate("alice", "pw", pid)
	if err != nil {
		t.Fatal(err)
	}
	if tok == "" || c.Token != tok {
		t.Errorf("token not installed: %q vs %q", tok, c.Token)
	}
}

func TestAuthenticateFailure(t *testing.T) {
	c, pid := wiredCloud(t)
	_, err := c.Authenticate("alice", "wrong", pid)
	if !IsStatus(err, http.StatusUnauthorized) {
		t.Errorf("err = %v, want 401", err)
	}
}

func TestStatusError(t *testing.T) {
	err := &StatusError{Status: 403, Message: "no"}
	if err.Error() != "http 403: no" {
		t.Errorf("Error() = %q", err.Error())
	}
	if !IsStatus(err, 403) || IsStatus(err, 404) || IsStatus(nil, 403) {
		t.Error("IsStatus misbehaves")
	}
}

func TestVolumeCRUDThroughClient(t *testing.T) {
	c, pid := wiredCloud(t)
	if _, err := c.Authenticate("alice", "pw", pid); err != nil {
		t.Fatal(err)
	}
	v, status, err := c.CreateVolume(pid, "data", 3)
	if err != nil || status != http.StatusAccepted {
		t.Fatalf("CreateVolume = %v, %d", err, status)
	}
	got, _, err := c.GetVolume(pid, v.ID)
	if err != nil || got.SizeGB != 3 {
		t.Fatalf("GetVolume = %+v, %v", got, err)
	}
	vols, _, err := c.ListVolumes(pid)
	if err != nil || len(vols) != 1 {
		t.Fatalf("ListVolumes = %v, %v", vols, err)
	}
	upd, _, err := c.UpdateVolume(pid, v.ID, "renamed")
	if err != nil || upd.Name != "renamed" {
		t.Fatalf("UpdateVolume = %+v, %v", upd, err)
	}
	q, _, err := c.GetQuota(pid)
	if err != nil || q.Volumes != 5 {
		t.Fatalf("GetQuota = %+v, %v", q, err)
	}
	if _, err := c.SetQuota(pid, cinder.QuotaSet{Volumes: 7, Gigabytes: 100}); err != nil {
		t.Fatal(err)
	}
	status, err = c.DeleteVolume(pid, v.ID)
	if err != nil || status != http.StatusNoContent {
		t.Fatalf("DeleteVolume = %d, %v", status, err)
	}
}

func TestComputeThroughClient(t *testing.T) {
	c, pid := wiredCloud(t)
	if _, err := c.Authenticate("alice", "pw", pid); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.CreateVolume(pid, "data", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, status, err := c.CreateServer(pid, "web")
	if err != nil || status != http.StatusAccepted {
		t.Fatalf("CreateServer = %v, %d", err, status)
	}
	servers, _, err := c.ListServers(pid)
	if err != nil || len(servers) != 1 || servers[0].ID != srv.ID {
		t.Fatalf("ListServers = %v, %v", servers, err)
	}
	gotSrv, _, err := c.GetServer(pid, srv.ID)
	if err != nil || gotSrv.Name != "web" {
		t.Fatalf("GetServer = %+v, %v", gotSrv, err)
	}
	if _, _, err := c.GetServer(pid, "ghost"); !IsStatus(err, http.StatusNotFound) {
		t.Errorf("ghost server = %v, want 404", err)
	}
	if _, err := c.AttachVolume(pid, srv.ID, v.ID); err != nil {
		t.Fatal(err)
	}
	got, _, _ := c.GetVolume(pid, v.ID)
	if got.Status != cinder.StatusInUse {
		t.Errorf("status = %q after attach", got.Status)
	}
	if _, err := c.DetachVolume(pid, srv.ID, v.ID); err != nil {
		t.Fatal(err)
	}
	status, err = c.DeleteServer(pid, srv.ID)
	if err != nil || status != http.StatusNoContent {
		t.Fatalf("DeleteServer = %d, %v", status, err)
	}
	if _, err := c.DeleteServer(pid, srv.ID); !IsStatus(err, http.StatusNotFound) {
		t.Errorf("double delete = %v, want 404", err)
	}
}

func TestProjectLookup(t *testing.T) {
	c, pid := wiredCloud(t)
	if _, err := c.Authenticate("alice", "pw", pid); err != nil {
		t.Fatal(err)
	}
	p, status, err := c.GetProject(pid)
	if err != nil || status != http.StatusOK || p.Name != "p" {
		t.Fatalf("GetProject = %+v, %d, %v", p, status, err)
	}
	if _, _, err := c.GetProject("ghost"); !IsStatus(err, http.StatusNotFound) {
		t.Errorf("ghost project = %v, want 404", err)
	}
}

func TestValidateToken(t *testing.T) {
	c, pid := wiredCloud(t)
	tok, err := c.Authenticate("alice", "pw", pid)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := c.ValidateToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved.Roles) != 1 || resolved.Roles[0] != paper.RoleAdmin {
		t.Errorf("roles = %v", resolved.Roles)
	}
	if _, err := c.ValidateToken("bogus"); !IsStatus(err, http.StatusNotFound) {
		t.Errorf("bogus subject = %v, want 404", err)
	}
}

func TestWithTokenIsCopy(t *testing.T) {
	c := New("http://x")
	c2 := c.WithToken("tok")
	if c.Token != "" {
		t.Error("WithToken mutated the original")
	}
	if c2.Token != "tok" || c2.BaseURL != c.BaseURL {
		t.Errorf("copy = %+v", c2)
	}
}

func TestDoErrorPaths(t *testing.T) {
	c, pid := wiredCloud(t)
	if _, err := c.Authenticate("alice", "pw", pid); err != nil {
		t.Fatal(err)
	}
	// 404 surfaces as StatusError with the OpenStack error message.
	_, status, err := c.GetVolume(pid, "ghost")
	if !IsStatus(err, http.StatusNotFound) || status != http.StatusNotFound {
		t.Errorf("GetVolume ghost = %d, %v", status, err)
	}
	se, ok := err.(*StatusError)
	if !ok || se.Message == "" {
		t.Errorf("error message not extracted: %v", err)
	}
	// Unreachable host yields a transport error, not a StatusError.
	lost := New("http://127.0.0.1:1")
	if _, err := lost.Do(http.MethodGet, "/x", nil, nil, nil); err == nil {
		t.Error("unreachable host should error")
	} else if IsStatus(err, 0) {
		t.Error("transport error must not be a StatusError")
	}
}
