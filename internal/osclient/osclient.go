// Package osclient is a small REST client for the simulated OpenStack
// cloud (and for the cloud monitor proxy, which exposes the same volume
// API). It plays the role cURL plays in the paper's workflow: every
// interaction goes through plain HTTP requests and interprets response
// status codes.
package osclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/openstack/keystone"
	"cloudmon/internal/openstack/nova"
)

// StatusError is returned for non-2xx responses, carrying the HTTP status
// and the response body's error message.
type StatusError struct {
	Status  int
	Message string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Status, e.Message)
}

// IsStatus reports whether err is (or wraps) a StatusError with the given
// code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == code
}

// Client talks to one base URL with an optional bearer token.
type Client struct {
	// BaseURL is the root of the cloud or monitor, without trailing slash.
	BaseURL string
	// Token is sent as X-Auth-Token when non-empty.
	Token string
	// HTTPClient defaults to a pooled client bounded by
	// httpkit.DefaultCloudTimeout.
	HTTPClient *http.Client
	// Timeout, when positive, bounds each individual request with a
	// context deadline — the per-attempt deadline retry loops rely on.
	// It applies on top of (and usually under) the HTTP client's own
	// overall timeout.
	Timeout time.Duration
}

// New returns a client for the base URL.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// WithToken returns a copy of the client using the token.
func (c *Client) WithToken(token string) *Client {
	cp := *c
	cp.Token = token
	return &cp
}

// defaultTransport is the shared pooled transport: the monitor's snapshot
// reads hit the same one or two cloud hosts from many goroutines, so the
// per-host idle-connection cap is raised well past net/http's default of 2
// — otherwise concurrent snapshots churn through TCP dials under load.
var defaultTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	t.IdleConnTimeout = 90 * time.Second
	return t
}()

// defaultClient bounds request latency so a hung cloud cannot stall the
// monitor indefinitely. The bound derives from the one shared knob
// (httpkit.DefaultCloudTimeout) the monitor's forwarder also uses.
var defaultClient = &http.Client{Timeout: httpkit.DefaultCloudTimeout, Transport: defaultTransport}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultClient
}

// Do performs a JSON request. in (if non-nil) is marshaled as the body;
// out (if non-nil) receives the decoded response body. It returns the
// response status code; non-2xx responses additionally return a
// *StatusError. extraHeaders are applied verbatim.
func (c *Client) Do(method, path string, in, out any, extraHeaders map[string]string) (int, error) {
	return c.DoCtx(context.Background(), method, path, in, out, extraHeaders)
}

// DoCtx is Do bounded by ctx; the client's Timeout (when set) additionally
// arms a per-request deadline, so a retry loop passing a long-lived ctx
// still gets fresh per-attempt deadlines.
func (c *Client) DoCtx(ctx context.Context, method, path string, in, out any, extraHeaders map[string]string) (int, error) {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return 0, fmt.Errorf("osclient: marshal request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return 0, fmt.Errorf("osclient: new request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("X-Auth-Token", c.Token)
	}
	for k, v := range extraHeaders {
		req.Header.Set(k, v)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, fmt.Errorf("osclient: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, fmt.Errorf("osclient: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := extractErrorMessage(data)
		return resp.StatusCode, &StatusError{Status: resp.StatusCode, Message: msg}
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("osclient: decode response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

// extractErrorMessage pulls the message out of an OpenStack-style error
// body, falling back to the raw body.
func extractErrorMessage(data []byte) string {
	var body struct {
		Error struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err == nil && body.Error.Message != "" {
		return body.Error.Message
	}
	return string(data)
}

// authRequest mirrors keystone's password-auth body.
type authRequest struct {
	Auth struct {
		Identity struct {
			Password struct {
				User struct {
					Name     string `json:"name"`
					Password string `json:"password"`
				} `json:"user"`
			} `json:"password"`
		} `json:"identity"`
		Scope struct {
			Project struct {
				ID string `json:"id"`
			} `json:"project"`
		} `json:"scope"`
	} `json:"auth"`
}

// Authenticate obtains a project-scoped token via keystone password auth
// and returns the token ID (also installing it on the client).
func (c *Client) Authenticate(userName, password, projectID string) (string, error) {
	var req authRequest
	req.Auth.Identity.Password.User.Name = userName
	req.Auth.Identity.Password.User.Password = password
	req.Auth.Scope.Project.ID = projectID

	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("osclient: marshal auth: %w", err)
	}
	ctx := context.Background()
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/identity/v3/auth/tokens", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("osclient: new auth request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return "", fmt.Errorf("osclient: auth: %w", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusCreated {
		return "", &StatusError{Status: resp.StatusCode, Message: extractErrorMessage(data)}
	}
	tok := resp.Header.Get("X-Subject-Token")
	if tok == "" {
		return "", fmt.Errorf("osclient: auth response missing X-Subject-Token")
	}
	c.Token = tok
	return tok, nil
}

// ValidateToken asks keystone to resolve a subject token. The client's own
// token authenticates the call.
func (c *Client) ValidateToken(subject string) (*keystone.Token, error) {
	var out struct {
		Token keystone.Token `json:"token"`
	}
	_, err := c.Do(http.MethodGet, "/identity/v3/auth/tokens", nil, &out,
		map[string]string{"X-Subject-Token": subject})
	if err != nil {
		return nil, err
	}
	return &out.Token, nil
}

// GetProject fetches one project.
func (c *Client) GetProject(projectID string) (*keystone.Project, int, error) {
	var out struct {
		Project keystone.Project `json:"project"`
	}
	status, err := c.Do(http.MethodGet, "/identity/v3/projects/"+projectID, nil, &out, nil)
	if err != nil {
		return nil, status, err
	}
	return &out.Project, status, nil
}

// ListVolumes lists the project's volumes.
func (c *Client) ListVolumes(projectID string) ([]cinder.Volume, int, error) {
	var out struct {
		Volumes []cinder.Volume `json:"volumes"`
	}
	status, err := c.Do(http.MethodGet, "/volume/v3/"+projectID+"/volumes", nil, &out, nil)
	if err != nil {
		return nil, status, err
	}
	return out.Volumes, status, nil
}

// CreateVolume creates a volume.
func (c *Client) CreateVolume(projectID, name string, sizeGB int) (*cinder.Volume, int, error) {
	in := map[string]map[string]any{"volume": {"name": name, "size": sizeGB}}
	var out struct {
		Volume cinder.Volume `json:"volume"`
	}
	status, err := c.Do(http.MethodPost, "/volume/v3/"+projectID+"/volumes", in, &out, nil)
	if err != nil {
		return nil, status, err
	}
	return &out.Volume, status, nil
}

// GetVolume shows one volume.
func (c *Client) GetVolume(projectID, volumeID string) (*cinder.Volume, int, error) {
	var out struct {
		Volume cinder.Volume `json:"volume"`
	}
	status, err := c.Do(http.MethodGet, "/volume/v3/"+projectID+"/volumes/"+volumeID, nil, &out, nil)
	if err != nil {
		return nil, status, err
	}
	return &out.Volume, status, nil
}

// UpdateVolume renames a volume.
func (c *Client) UpdateVolume(projectID, volumeID, name string) (*cinder.Volume, int, error) {
	in := map[string]map[string]any{"volume": {"name": name}}
	var out struct {
		Volume cinder.Volume `json:"volume"`
	}
	status, err := c.Do(http.MethodPut, "/volume/v3/"+projectID+"/volumes/"+volumeID, in, &out, nil)
	if err != nil {
		return nil, status, err
	}
	return &out.Volume, status, nil
}

// DeleteVolume deletes a volume, returning the response status.
func (c *Client) DeleteVolume(projectID, volumeID string) (int, error) {
	return c.Do(http.MethodDelete, "/volume/v3/"+projectID+"/volumes/"+volumeID, nil, nil, nil)
}

// GetQuota fetches the project quota set.
func (c *Client) GetQuota(projectID string) (*cinder.QuotaSet, int, error) {
	var out struct {
		QuotaSet cinder.QuotaSet `json:"quota_set"`
	}
	status, err := c.Do(http.MethodGet, "/volume/v3/"+projectID+"/quota_sets", nil, &out, nil)
	if err != nil {
		return nil, status, err
	}
	return &out.QuotaSet, status, nil
}

// SetQuota updates the project quota set.
func (c *Client) SetQuota(projectID string, q cinder.QuotaSet) (int, error) {
	in := map[string]cinder.QuotaSet{"quota_set": q}
	return c.Do(http.MethodPut, "/volume/v3/"+projectID+"/quota_sets", in, nil, nil)
}

// ListServers lists the project's compute instances.
func (c *Client) ListServers(projectID string) ([]nova.Server, int, error) {
	var out struct {
		Servers []nova.Server `json:"servers"`
	}
	status, err := c.Do(http.MethodGet, "/compute/v2.1/"+projectID+"/servers", nil, &out, nil)
	if err != nil {
		return nil, status, err
	}
	return out.Servers, status, nil
}

// GetServer shows one compute instance.
func (c *Client) GetServer(projectID, serverID string) (*nova.Server, int, error) {
	var out struct {
		Server nova.Server `json:"server"`
	}
	status, err := c.Do(http.MethodGet, "/compute/v2.1/"+projectID+"/servers/"+serverID, nil, &out, nil)
	if err != nil {
		return nil, status, err
	}
	return &out.Server, status, nil
}

// DeleteServer deletes a compute instance.
func (c *Client) DeleteServer(projectID, serverID string) (int, error) {
	return c.Do(http.MethodDelete, "/compute/v2.1/"+projectID+"/servers/"+serverID, nil, nil, nil)
}

// CreateServer boots a compute instance.
func (c *Client) CreateServer(projectID, name string) (*nova.Server, int, error) {
	in := map[string]map[string]string{"server": {"name": name}}
	var out struct {
		Server nova.Server `json:"server"`
	}
	status, err := c.Do(http.MethodPost, "/compute/v2.1/"+projectID+"/servers", in, &out, nil)
	if err != nil {
		return nil, status, err
	}
	return &out.Server, status, nil
}

// AttachVolume attaches the volume to the server.
func (c *Client) AttachVolume(projectID, serverID, volumeID string) (int, error) {
	in := map[string]string{"volume_id": volumeID}
	return c.Do(http.MethodPost, "/compute/v2.1/"+projectID+"/servers/"+serverID+"/attach", in, nil, nil)
}

// DetachVolume detaches the volume from the server.
func (c *Client) DetachVolume(projectID, serverID, volumeID string) (int, error) {
	in := map[string]string{"volume_id": volumeID}
	return c.Do(http.MethodPost, "/compute/v2.1/"+projectID+"/servers/"+serverID+"/detach", in, nil, nil)
}
