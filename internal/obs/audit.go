package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Audit record schema identity. Every record the log writes is stamped
// with these, so a pack consumer can tell exactly which shape it is
// parsing; records without a schema_id predate the stamp and are
// tolerated (and flagged) as legacy.
const (
	AuditSchemaID      = "cloudmon.audit.record"
	AuditSchemaVersion = "1.0.0"
)

// AuditRecord is one line of the audit trail: a monitored request whose
// verdict was not a clean pass, traced back to the security requirements
// the violated (or unverifiable) contract protects. The record carries
// everything an auditor needs without the monitor process: the SecReq
// IDs, the failing contract clause, the pre/post state the verdict was
// computed from, and the per-stage timings.
type AuditRecord struct {
	// SchemaID and SchemaVersion identify the record shape
	// (AuditSchemaID/AuditSchemaVersion, stamped by Append). Empty on
	// legacy records written before stamping existed.
	SchemaID      string `json:"schema_id,omitempty"`
	SchemaVersion string `json:"schema_version,omitempty"`
	// Instance identifies the monitor instance that produced the record
	// (monitor.Config.InstanceID). Empty outside fleet deployments; the
	// field is additive, so single-instance trails and their packs are
	// byte-compatible with earlier readers.
	Instance string `json:"instance,omitempty"`
	// Seq is the chain sequence number, assigned by the log. Contiguous
	// within and across segments; auditctl verify checks the chain.
	Seq uint64 `json:"seq"`
	// Time is the record time in nanoseconds since the Unix epoch.
	Time int64 `json:"time_unix_nano"`
	// Trigger identifies the contract, e.g. "DELETE volume".
	Trigger string `json:"trigger"`
	// Method and Resource split the trigger for filtering.
	Method   string `json:"method"`
	Resource string `json:"resource"`
	// Outcome is the verdict class (blocked, rejected, violation:*,
	// error, unverified).
	Outcome string `json:"outcome"`
	// SecReqs are the security requirements the contract protects.
	SecReqs []string `json:"sec_reqs,omitempty"`
	// MatchedSecReqs are the requirements whose transition case matched.
	MatchedSecReqs []string `json:"matched_sec_reqs,omitempty"`
	// FailingClause is the contract clause that decided the verdict (the
	// pre-condition for blocked/rejected/forbidden-accepted, the
	// post-condition for effect violations).
	FailingClause string `json:"failing_clause,omitempty"`
	// ContractDigest binds the verdict to the exact contract version that
	// produced it (contract.Contract.Digest): replay refuses to compare a
	// verdict against a different contract than the one that decided it.
	ContractDigest string `json:"contract_digest,omitempty"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail,omitempty"`
	// BackendStatus is the cloud's response code (0 when not forwarded).
	BackendStatus int `json:"backend_status,omitempty"`
	// DegradedPre marks a pre-state served from the stale cache.
	DegradedPre bool `json:"degraded_pre,omitempty"`
	// Pre and Post are the state snapshots (OCL literal syntax).
	Pre  map[string]string `json:"pre,omitempty"`
	Post map[string]string `json:"post,omitempty"`
	// StageNanos are the per-stage trace timings.
	StageNanos map[string]int64 `json:"stage_nanos,omitempty"`
	// Late marks a verdict whose post phase ran after the response
	// returned (async post-verification); Shed marks a late verdict whose
	// post phase was abandoned by a saturated queue under the shed
	// backpressure policy.
	Late bool `json:"late,omitempty"`
	Shed bool `json:"shed,omitempty"`
	// ReturnUnixNano is when the response returned to the client (late
	// records only); LagNanos is the detection lag — record time minus
	// return time, non-negative. Both timestamps travel with the record
	// so lag is reconstructible from the trail alone.
	ReturnUnixNano int64 `json:"return_unix_nano,omitempty"`
	LagNanos       int64 `json:"lag_nanos,omitempty"`
}

// TimeStamp returns the record time as a time.Time.
func (r *AuditRecord) TimeStamp() time.Time { return time.Unix(0, r.Time) }

// DefaultAuditMaxBytes is the segment rotation threshold.
const DefaultAuditMaxBytes = 8 << 20

// segmentName renders the canonical segment file name.
func segmentName(index int) string {
	return fmt.Sprintf("audit-%06d.jsonl", index)
}

// AuditLog is an append-only, size-rotated JSONL audit sink. Records are
// written one JSON document per line into numbered segment files
// (audit-000001.jsonl, audit-000002.jsonl, ...) inside a directory; a
// segment is rotated once it exceeds MaxBytes. Sequence numbers are
// assigned under the log's lock, so the chain of records is contiguous
// across segments — the invariant auditctl verify checks.
//
// Safe for concurrent use. Write failures are remembered and surfaced by
// Err; monitoring must never fail because the audit sink did.
type AuditLog struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	seq      uint64
	curIndex int
	cur      *os.File
	curSize  int64
	counts   KeyedCounter // records written per outcome
	err      error
	now      func() time.Time
}

// OpenAuditLog opens (or creates) the audit directory and prepares the
// next segment. An existing chain is resumed: the sequence continues
// after the last valid record, and writes go to a fresh segment so a
// crash-torn tail is never appended to.
func OpenAuditLog(dir string, maxBytes int64) (*AuditLog, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultAuditMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: audit dir: %w", err)
	}
	segments, err := AuditSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &AuditLog{dir: dir, maxBytes: maxBytes, now: time.Now}
	if len(segments) > 0 {
		last := segments[len(segments)-1]
		l.curIndex = last.Index
		recs, _, err := readSegment(last.Path)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			l.seq = recs[len(recs)-1].Seq
		} else {
			// Empty/torn-only tail segment: walk back for the last seq.
			for i := len(segments) - 2; i >= 0; i-- {
				recs, _, err := readSegment(segments[i].Path)
				if err != nil {
					return nil, err
				}
				if len(recs) > 0 {
					l.seq = recs[len(recs)-1].Seq
					break
				}
			}
		}
	}
	return l, nil
}

// Dir returns the audit directory.
func (l *AuditLog) Dir() string {
	return l.dir
}

// openSegment opens the next segment file; callers hold the lock.
func (l *AuditLog) openSegment() error {
	if l.cur != nil {
		_ = l.cur.Close()
		l.cur = nil
	}
	l.curIndex++
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.curIndex)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: open audit segment: %w", err)
	}
	l.cur = f
	l.curSize = 0
	return nil
}

// Append assigns the next sequence number to rec and writes it. The
// first error latches: subsequent records are dropped (and still
// counted), never partially interleaved.
func (l *AuditLog) Append(rec *AuditRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	rec.Seq = l.seq
	if rec.SchemaID == "" {
		rec.SchemaID = AuditSchemaID
		rec.SchemaVersion = AuditSchemaVersion
	}
	if rec.Time == 0 {
		rec.Time = l.now().UnixNano()
	}
	l.counts.Add(rec.Outcome, 1)
	if l.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		l.err = fmt.Errorf("obs: marshal audit record: %w", err)
		return
	}
	data = append(data, '\n')
	if l.cur == nil || l.curSize+int64(len(data)) > l.maxBytes && l.curSize > 0 {
		if err := l.openSegment(); err != nil {
			l.err = err
			return
		}
	}
	n, err := l.cur.Write(data)
	l.curSize += int64(n)
	if err != nil {
		l.err = fmt.Errorf("obs: write audit record: %w", err)
	}
}

// Counts returns how many records were appended per outcome since the
// log was opened (write failures included — the counter answers "what
// should be on disk", which verification compares against reality).
func (l *AuditLog) Counts() map[string]uint64 {
	return l.counts.Snapshot()
}

// Err returns the first write error, if any.
func (l *AuditLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Sync flushes the current segment to stable storage.
func (l *AuditLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return nil
	}
	return l.cur.Sync()
}

// Close closes the current segment.
func (l *AuditLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return nil
	}
	err := l.cur.Close()
	l.cur = nil
	return err
}

// Segment identifies one audit segment file on disk.
type Segment struct {
	// Path is the file path.
	Path string
	// Index is the numeric segment index from the file name.
	Index int
	// Size is the file size in bytes.
	Size int64
}

// AuditSegments lists the audit segments in dir, sorted by index.
func AuditSegments(dir string) ([]Segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("obs: read audit dir: %w", err)
	}
	var out []Segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "audit-%d.jsonl", &idx); err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("obs: stat audit segment: %w", err)
		}
		out = append(out, Segment{Path: filepath.Join(dir, e.Name()), Index: idx, Size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}
