package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(1 * time.Millisecond)   // bucket 0 (bounds are inclusive upper)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(2 * time.Second)        // +Inf
	h.Observe(-time.Second)           // clamped to 0, bucket 0
	snap := h.Snapshot()
	want := []uint64{3, 1, 0, 1}
	for i, c := range snap.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", snap.Counts, want)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + 2*time.Second
	if h.Sum() != wantSum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), wantSum)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left Count=%d Sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.010, 0.020, 0.040})
	// 10 observations in (10ms, 20ms]: the bucket spans 10ms..20ms.
	for i := 0; i < 10; i++ {
		h.Observe(15 * time.Millisecond)
	}
	// Median interpolates to the middle of the containing bucket.
	q50 := h.Quantile(0.50)
	if q50 < 14*time.Millisecond || q50 > 16*time.Millisecond {
		t.Errorf("Quantile(0.5) = %v, want ~15ms", q50)
	}
	// All mass in one bucket: p99 stays within its bounds.
	q99 := h.Quantile(0.99)
	if q99 < 10*time.Millisecond || q99 > 20*time.Millisecond {
		t.Errorf("Quantile(0.99) = %v, want within (10ms, 20ms]", q99)
	}
	// Observations beyond the last bound: the quantile reports the last
	// finite bound (Prometheus's overflowed-quantile behaviour).
	h2 := NewHistogram([]float64{0.001})
	h2.Observe(time.Second)
	if q := h2.Quantile(0.99); q != time.Millisecond {
		t.Errorf("overflow Quantile(0.99) = %v, want 1ms", q)
	}
	// Empty histogram.
	if q := NewDurationHistogram().Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %v, want 0", q)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.002, 0.004, 0.008})
	// 90 fast, 10 slow: p50 in the first bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(6 * time.Millisecond)
	}
	if q := h.Quantile(0.50); q > time.Millisecond {
		t.Errorf("Quantile(0.50) = %v, want <= 1ms", q)
	}
	if q := h.Quantile(0.99); q < 4*time.Millisecond || q > 8*time.Millisecond {
		t.Errorf("Quantile(0.99) = %v, want in (4ms, 8ms]", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewDurationHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(i+1) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d, want 4000", h.Count())
	}
	var total uint64
	for _, c := range h.Snapshot().Counts {
		total += c
	}
	if total != 4000 {
		t.Fatalf("bucket sum = %d, want 4000", total)
	}
}

func TestDefaultDurationBoundsSorted(t *testing.T) {
	for i := 1; i < len(DefaultDurationBounds); i++ {
		if DefaultDurationBounds[i] <= DefaultDurationBounds[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %v", i, DefaultDurationBounds)
		}
	}
	if math.IsInf(DefaultDurationBounds[len(DefaultDurationBounds)-1], 1) {
		t.Fatal("bounds must not include +Inf (implicit last bucket)")
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer()
	var trace Trace
	trace[StageRouteMatch] = 2 * time.Microsecond
	trace[StageForward] = 3 * time.Millisecond
	// Post stages stay zero: blocked request.
	tr.Observe(&trace)
	sums := tr.Summaries()
	if len(sums) != 2 {
		t.Fatalf("Summaries() has %d stages, want 2: %v", len(sums), sums)
	}
	if sums["route_match"].Count != 1 || sums["forward"].Count != 1 {
		t.Fatalf("Summaries() = %v", sums)
	}
	if _, ok := sums["post_eval"]; ok {
		t.Fatal("zero-span stage leaked into summaries")
	}
	m := trace.Map()
	if len(m) != 2 || m["forward"] != (3*time.Millisecond).Nanoseconds() {
		t.Fatalf("Map() = %v", m)
	}
	tr.Reset()
	if len(tr.Summaries()) != 0 {
		t.Fatal("Reset left observations")
	}
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != int(NumStages) {
		t.Fatalf("StageNames() has %d entries, want %d", len(names), NumStages)
	}
	if names[0] != "route_match" || names[int(NumStages)-1] != "post_eval" {
		t.Fatalf("StageNames() = %v", names)
	}
	if Stage(99).String() != "unknown" {
		t.Fatalf("out-of-range Stage.String() = %q", Stage(99).String())
	}
}
