package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/fstest"
)

func writeReadTrail(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	log, err := OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		log.Append(&AuditRecord{
			Trigger: "GET(volume)", Method: "GET", Resource: "volume",
			Outcome: "rejected", Time: int64(1000 + i),
		})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestAppendStampsSchema: every record written through Append carries
// the schema identity and version, without callers opting in.
func TestAppendStampsSchema(t *testing.T) {
	dir := writeReadTrail(t, 2)
	res, err := ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.SchemaID != AuditSchemaID || rec.SchemaVersion != AuditSchemaVersion {
			t.Fatalf("record %d stamped %q/%q", rec.Seq, rec.SchemaID, rec.SchemaVersion)
		}
	}
	if res.Legacy != 0 {
		t.Errorf("fresh trail counted %d legacy records", res.Legacy)
	}
}

// TestLegacyRecordsToleratedAndFlagged: a pre-schema trail (no
// schema_id) still reads and chain-verifies, but the legacy count
// surfaces it; an unknown schema_id is a problem, not a silent accept.
func TestLegacyRecordsToleratedAndFlagged(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		`{"seq":1,"time_unix_nano":1,"trigger":"GET(volume)","method":"GET","resource":"volume","outcome":"rejected"}`,
		`{"schema_id":"cloudmon.audit.record","schema_version":"1.0.0","seq":2,"time_unix_nano":2,"trigger":"GET(volume)","method":"GET","resource":"volume","outcome":"rejected"}`,
	}
	if err := os.WriteFile(filepath.Join(dir, "audit-000001.jsonl"),
		[]byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Legacy != 1 || res.Records != 2 {
		t.Fatalf("legacy trail: %+v", res)
	}

	if err := os.WriteFile(filepath.Join(dir, "audit-000002.jsonl"),
		[]byte(`{"schema_id":"someone.elses.schema","seq":3,"time_unix_nano":3,"trigger":"GET(volume)","method":"GET","resource":"volume","outcome":"rejected"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("unknown schema_id accepted")
	}
	found := false
	for _, p := range res.Problems {
		if strings.Contains(p, "unknown schema") {
			found = true
		}
	}
	if !found {
		t.Errorf("problems %v", res.Problems)
	}
}

// TestScanStopsCleanly: ErrStopScan ends the stream without an error
// and returns the partial tallies — what list -limit leans on.
func TestScanStopsCleanly(t *testing.T) {
	dir := writeReadTrail(t, 5)
	seen := 0
	res, err := ScanAuditDir(dir, func(r *AuditRecord) error {
		seen++
		if seen == 2 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 || res.Records != 2 {
		t.Fatalf("seen=%d records=%d, want 2/2", seen, res.Records)
	}
}

// TestTornClassification: a truncated final line is torn-tail (the
// crash shape, exit 1 territory); damage mid-file is corruption.
func TestTornClassification(t *testing.T) {
	dir := writeReadTrail(t, 3)
	segs, err := AuditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the tail: torn-final only.
	if err := os.WriteFile(segs[0].Path, data[:len(data)-15], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || !res.TornTailOnly() {
		t.Fatalf("truncated tail: OK=%v tornTailOnly=%v problems=%v", res.OK(), res.TornTailOnly(), res.Problems)
	}

	// Corrupt the first line instead: mid-file damage, and the skipped
	// record also tears the sequence chain.
	bad := append([]byte{}, data...)
	bad[10] = 0x00
	if err := os.WriteFile(segs[0].Path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.TornTailOnly() {
		t.Fatalf("mid-file corruption classified as torn tail: %+v", res)
	}
}

// TestReadAuditFS: the same chain reads identically through any fs.FS —
// the path evidence packs use (zip or dir) to reuse the reader.
func TestReadAuditFS(t *testing.T) {
	dir := writeReadTrail(t, 3)
	segs, err := AuditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	fsys := fstest.MapFS{
		"audit-000001.jsonl": &fstest.MapFile{Data: data},
	}
	res, err := ReadAuditFS(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 || len(res.Segments) != 1 {
		t.Fatalf("fs read: %d records in %d segments", len(res.Records), len(res.Segments))
	}
	if !VerifyChain(res).OK() {
		t.Fatal("fs chain does not verify")
	}
}
