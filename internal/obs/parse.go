package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition-format sample line.
type Sample struct {
	// Name is the metric name (including _bucket/_sum/_count suffixes).
	Name string
	// Labels are the sample's label pairs.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Label returns the named label value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseText parses a Prometheus text exposition document into samples —
// the consumer side of the Registry, used by loadmon to scrape a
// deployed monitor's /metrics endpoint. Comment and blank lines are
// skipped; malformed sample lines are errors.
func ParseText(data []byte) ([]Sample, error) {
	var out []Sample
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// parseSample parses `name{a="b",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// Exposition lines may carry a trailing timestamp; take the first field.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `a="b",c="d"`. Escaped quotes and backslashes in
// values are unescaped.
func parseLabels(body string) (map[string]string, error) {
	out := map[string]string{}
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label in %q", body)
		}
		name := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		rest = rest[1:]
		var sb strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			sb.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		out[name] = sb.String()
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		rest = strings.TrimSpace(rest)
	}
	return out, nil
}

// Find returns the samples with the given name.
func Find(samples []Sample, name string) []Sample {
	var out []Sample
	for _, s := range samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// CounterByLabel collects name's samples into a map keyed by the given
// label — e.g. verdict counters keyed by outcome.
func CounterByLabel(samples []Sample, name, label string) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range Find(samples, name) {
		out[s.Label(label)] += s.Value
	}
	return out
}

// HistogramFromSamples reconstructs a histogram snapshot from scraped
// _bucket/_sum/_count samples of the metric base name, keeping only
// samples whose selector label matches (pass "" to match all). The
// cumulative bucket counts are de-accumulated back into per-bucket
// counts so Quantile works on the result.
func HistogramFromSamples(samples []Sample, base, selectorLabel, selectorValue string) (HistSnapshot, bool) {
	type bucket struct {
		le  float64
		cum uint64
	}
	var (
		buckets []bucket
		snap    HistSnapshot
		seen    bool
	)
	match := func(s Sample) bool {
		return selectorLabel == "" || s.Label(selectorLabel) == selectorValue
	}
	for _, s := range Find(samples, base+"_bucket") {
		if !match(s) {
			continue
		}
		le := s.Label("le")
		if le == "+Inf" {
			buckets = append(buckets, bucket{le: -1, cum: uint64(s.Value)})
			continue
		}
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: f, cum: uint64(s.Value)})
	}
	for _, s := range Find(samples, base+"_sum") {
		if match(s) {
			snap.Sum = s.Value
			seen = true
		}
	}
	for _, s := range Find(samples, base+"_count") {
		if match(s) {
			snap.Count = uint64(s.Value)
			seen = true
		}
	}
	if len(buckets) == 0 || !seen {
		return HistSnapshot{}, false
	}
	sort.Slice(buckets, func(i, j int) bool {
		// +Inf (le = -1 sentinel) sorts last.
		if buckets[i].le < 0 {
			return false
		}
		if buckets[j].le < 0 {
			return true
		}
		return buckets[i].le < buckets[j].le
	})
	prev := uint64(0)
	for _, b := range buckets {
		if b.le >= 0 {
			snap.Bounds = append(snap.Bounds, b.le)
		}
		snap.Counts = append(snap.Counts, b.cum-prev)
		prev = b.cum
	}
	return snap, true
}
