package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultDurationBounds are the upper bucket bounds (in seconds) used for
// latency histograms: 1µs to 10s on a 1-2.5-5 grid, covering everything
// from an in-process cache hit to a fault-injected hang.
var DefaultDurationBounds = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with lock-free atomic counters,
// Prometheus-compatible (cumulative buckets rendered by
// MetricsWriter.Histogram). Observations are durations; bounds are in
// seconds to match the exposition convention.
type Histogram struct {
	bounds []float64       // sorted upper bounds, seconds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumNS  atomic.Uint64   // sum of observations in nanoseconds
	count  atomic.Uint64
}

// NewDurationHistogram builds a histogram over DefaultDurationBounds.
func NewDurationHistogram() *Histogram {
	return NewHistogram(DefaultDurationBounds)
}

// DefaultCountBounds are the upper bucket bounds for count-valued
// histograms (paths fetched per request): small integers exactly, then a
// coarsening grid.
var DefaultCountBounds = []float64{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32}

// NewCountHistogram builds a histogram for integer counts over
// DefaultCountBounds. Counts ride the duration plumbing under the
// convention 1 unit = 1 second, so rendering, parsing and quantiles work
// unchanged; read Sum as a total count and quantiles in whole units.
func NewCountHistogram() *Histogram {
	return NewHistogram(DefaultCountBounds)
}

// ObserveCount records one integer observation under the count convention.
func (h *Histogram) ObserveCount(n int) {
	h.Observe(time.Duration(n) * time.Second)
}

// NewHistogram builds a histogram with the given upper bounds (seconds,
// must be sorted ascending).
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	// Binary search for the first bound >= secs.
	i := sort.SearchFloat64s(h.bounds, secs)
	h.counts[i].Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Mean returns the mean observation (zero when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Reset zeroes all buckets (between runs).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sumNS.Store(0)
	h.count.Store(0)
}

// HistSnapshot is a consistent-enough copy of a histogram for rendering
// (buckets are read individually; a scrape racing an Observe may be off
// by one observation, which the exposition format tolerates).
type HistSnapshot struct {
	// Bounds are the upper bucket bounds in seconds.
	Bounds []float64
	// Counts are per-bucket (non-cumulative) counts; Counts[len(Bounds)]
	// is the +Inf bucket.
	Counts []uint64
	// Sum is the total observed time in seconds.
	Sum float64
	// Count is the number of observations.
	Count uint64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    time.Duration(h.sumNS.Load()).Seconds(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket — the same estimate Prometheus's
// histogram_quantile computes. Returns zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// Quantile estimates the q-quantile from a snapshot.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		// The rank falls in bucket i, spanning (lower, upper].
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		var upper float64
		if i < len(s.Bounds) {
			upper = s.Bounds[i]
		} else {
			// +Inf bucket: report its lower bound (the standard
			// Prometheus behaviour for overflowed quantiles).
			return secondsToDuration(lower)
		}
		frac := (rank - prev) / float64(c)
		return secondsToDuration(lower + (upper-lower)*frac)
	}
	if len(s.Bounds) > 0 {
		return secondsToDuration(s.Bounds[len(s.Bounds)-1])
	}
	return 0
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
