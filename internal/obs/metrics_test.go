package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("Value() after Reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value() = %d, want 8000", got)
	}
}

func TestKeyedCounter(t *testing.T) {
	var kc KeyedCounter
	kc.Add("a", 2)
	kc.Add("b", 1)
	kc.Add("a", 3)
	if got := kc.Value("a"); got != 5 {
		t.Fatalf("Value(a) = %d, want 5", got)
	}
	if got := kc.Value("missing"); got != 0 {
		t.Fatalf("Value(missing) = %d, want 0", got)
	}
	snap := kc.Snapshot()
	if snap["a"] != 5 || snap["b"] != 1 {
		t.Fatalf("Snapshot() = %v", snap)
	}
	kc.Reset()
	if got := kc.Value("a"); got != 0 {
		t.Fatalf("Value(a) after Reset = %d, want 0", got)
	}
}

func TestRegistryRender(t *testing.T) {
	reg := &Registry{}
	var hits Counter
	hits.Add(7)
	var byKind KeyedCounter
	byKind.Add("timeout", 3)
	byKind.Add("drop", 1)
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	reg.Collect(func(w *MetricsWriter) {
		w.Counter("demo_hits_total", "Hits.", float64(hits.Value()))
		w.Gauge("demo_state", "State.", 2, L("name", "breaker"))
		w.KeyedCounter("demo_faults_total", "Faults by kind.", &byKind, "kind")
		w.Histogram("demo_latency_seconds", "Latency.", h)
	})
	doc := reg.Render()

	for _, want := range []string{
		"# HELP demo_hits_total Hits.",
		"# TYPE demo_hits_total counter",
		"demo_hits_total 7",
		"# TYPE demo_state gauge",
		`demo_state{name="breaker"} 2`,
		`demo_faults_total{kind="drop"} 1`,
		`demo_faults_total{kind="timeout"} 3`,
		"# TYPE demo_latency_seconds histogram",
		`demo_latency_seconds_bucket{le="0.001"} 1`,
		`demo_latency_seconds_bucket{le="0.01"} 2`,
		`demo_latency_seconds_bucket{le="+Inf"} 3`,
		"demo_latency_seconds_count 3",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("rendered document missing %q:\n%s", want, doc)
		}
	}
	// Keys must render sorted for a stable document.
	if strings.Index(doc, `kind="drop"`) > strings.Index(doc, `kind="timeout"`) {
		t.Errorf("keyed counter samples not sorted:\n%s", doc)
	}
}

func TestRegistryHeaderDedup(t *testing.T) {
	reg := &Registry{}
	reg.Collect(func(w *MetricsWriter) {
		w.Counter("dup_total", "Dup.", 1, L("src", "a"))
		w.Counter("dup_total", "Dup.", 2, L("src", "b"))
	})
	doc := reg.Render()
	if n := strings.Count(doc, "# HELP dup_total"); n != 1 {
		t.Fatalf("HELP emitted %d times, want 1:\n%s", n, doc)
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := &Registry{}
	reg.Collect(func(w *MetricsWriter) {
		w.Counter("served_total", "Served.", 42)
	})
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "served_total 42") {
		t.Errorf("body = %q", buf[:n])
	}
}

func TestEscapeLabel(t *testing.T) {
	doc := func() string {
		reg := &Registry{}
		reg.Collect(func(w *MetricsWriter) {
			w.Counter("esc_total", "Esc.", 1, L("v", "a\"b\\c\nd"))
		})
		return reg.Render()
	}()
	if !strings.Contains(doc, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", doc)
	}
	// And the parser must invert it.
	samples, err := ParseText([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	found := Find(samples, "esc_total")
	if len(found) != 1 || found[0].Label("v") != "a\"b\\c\nd" {
		t.Fatalf("round trip = %+v", found)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	reg := &Registry{}
	h := NewDurationHistogram()
	h.Observe(100 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	reg.Collect(func(w *MetricsWriter) {
		w.Counter("rt_verdicts_total", "V.", 11, L("outcome", "ok"))
		w.Counter("rt_verdicts_total", "V.", 3, L("outcome", "blocked"))
		w.Histogram("rt_stage_duration_seconds", "S.", h, L("stage", "forward"))
	})
	samples, err := ParseText([]byte(reg.Render()))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := CounterByLabel(samples, "rt_verdicts_total", "outcome")
	if verdicts["ok"] != 11 || verdicts["blocked"] != 3 {
		t.Fatalf("CounterByLabel = %v", verdicts)
	}
	snap, ok := HistogramFromSamples(samples, "rt_stage_duration_seconds", "stage", "forward")
	if !ok {
		t.Fatal("HistogramFromSamples found nothing")
	}
	if snap.Count != 2 {
		t.Fatalf("scraped Count = %d, want 2", snap.Count)
	}
	// De-accumulated buckets must sum back to the count.
	var total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total != 2 {
		t.Fatalf("bucket counts sum to %d, want 2", total)
	}
	// Quantiles over the reconstructed snapshot must land in the right
	// buckets: both observations are under 5ms.
	if q := snap.Quantile(0.99); q > 5*time.Millisecond {
		t.Fatalf("Quantile(0.99) = %v, want <= 5ms", q)
	}
	if _, ok := HistogramFromSamples(samples, "rt_stage_duration_seconds", "stage", "missing"); ok {
		t.Fatal("HistogramFromSamples matched a missing selector")
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"novalue",
		`bad{unterminated="x} 1`,
		"name{} notanumber",
	} {
		if _, err := ParseText([]byte(doc)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", doc)
		}
	}
	// Comments, blanks and trailing timestamps are fine.
	samples, err := ParseText([]byte("# HELP x y\n\nx 5 1712345678\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Value != 5 {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestHTTPMetrics(t *testing.T) {
	hm := NewHTTPMetrics()
	handler := hm.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(handler)
	defer srv.Close()
	for _, path := range []string{"/", "/", "/missing"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	reg := &Registry{}
	hm.Register(reg, "demo")
	samples, err := ParseText([]byte(reg.Render()))
	if err != nil {
		t.Fatal(err)
	}
	var ok200, notFound float64
	for _, s := range Find(samples, "demo_requests_total") {
		switch s.Label("status") {
		case "200":
			ok200 = s.Value
		case "404":
			notFound = s.Value
		}
		if s.Label("method") != "GET" {
			t.Errorf("method label = %q", s.Label("method"))
		}
	}
	if ok200 != 2 || notFound != 1 {
		t.Fatalf("requests: 200=%v 404=%v, want 2 and 1", ok200, notFound)
	}
	if snap, ok := HistogramFromSamples(samples, "demo_request_duration_seconds", "", ""); !ok || snap.Count != 3 {
		t.Fatalf("latency histogram count = %d (ok=%v), want 3", snap.Count, ok)
	}
}
