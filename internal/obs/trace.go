package obs

import "time"

// Stage identifies one segment of the monitor pipeline a request passes
// through. The order matches the paper's workflow (Section III).
type Stage int

// Pipeline stages.
const (
	// StageRouteMatch is the contract-route lookup.
	StageRouteMatch Stage = iota
	// StagePreSnapshot reads the pre-state navigation paths.
	StagePreSnapshot
	// StagePreEval evaluates the pre-condition over the snapshot.
	StagePreEval
	// StageForward is the round trip to the private cloud.
	StageForward
	// StagePostSnapshot reads the post-state paths.
	StagePostSnapshot
	// StagePostEval evaluates the post-condition.
	StagePostEval
	// NumStages is the stage count (array sizes).
	NumStages
)

// stageNames indexes Stage -> metric label.
var stageNames = [NumStages]string{
	"route_match",
	"pre_snapshot",
	"pre_eval",
	"forward",
	"post_snapshot",
	"post_eval",
}

// String returns the stage's metric label (snake_case).
func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns all stage labels in pipeline order.
func StageNames() []string {
	return append([]string(nil), stageNames[:]...)
}

// Trace is the per-request span buffer: one duration per pipeline stage,
// held on the caller's stack — no allocation, no locks. Stages a request
// never reaches (e.g. post_eval on a blocked request) stay zero and are
// not observed into the histograms.
type Trace [NumStages]time.Duration

// Map renders the non-zero spans keyed by stage label (audit records,
// verdict documents).
func (t *Trace) Map() map[string]int64 {
	var out map[string]int64
	for s := Stage(0); s < NumStages; s++ {
		if t[s] > 0 {
			if out == nil {
				out = make(map[string]int64, int(NumStages))
			}
			out[s.String()] = t[s].Nanoseconds()
		}
	}
	return out
}

// Tracer aggregates request traces into per-stage latency histograms.
// Observing a trace is lock-free (atomic bucket increments only).
type Tracer struct {
	hists [NumStages]*Histogram
}

// NewTracer builds a tracer with a duration histogram per stage.
func NewTracer() *Tracer {
	t := &Tracer{}
	for i := range t.hists {
		t.hists[i] = NewDurationHistogram()
	}
	return t
}

// Observe folds one request's trace into the per-stage histograms.
// Zero spans (stages the request never reached) are skipped.
func (t *Tracer) Observe(tr *Trace) {
	for s := Stage(0); s < NumStages; s++ {
		if tr[s] > 0 {
			t.hists[s].Observe(tr[s])
		}
	}
}

// Stage returns the histogram for one stage.
func (t *Tracer) Stage(s Stage) *Histogram { return t.hists[s] }

// Reset zeroes every stage histogram.
func (t *Tracer) Reset() {
	for _, h := range t.hists {
		h.Reset()
	}
}

// StageSummary condenses one stage's histogram for reports.
type StageSummary struct {
	Count  uint64  `json:"count"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MeanUS float64 `json:"mean_us"`
}

// Summaries returns a summary per stage that saw at least one request,
// keyed by stage label.
func (t *Tracer) Summaries() map[string]StageSummary {
	out := make(map[string]StageSummary)
	for s := Stage(0); s < NumStages; s++ {
		h := t.hists[s]
		if h.Count() == 0 {
			continue
		}
		out[s.String()] = SummarizeHistogram(h.Snapshot())
	}
	return out
}

// SummarizeHistogram condenses a histogram snapshot into the report shape.
func SummarizeHistogram(snap HistSnapshot) StageSummary {
	toUS := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	sum := StageSummary{
		Count: snap.Count,
		P50US: toUS(snap.Quantile(0.50)),
		P95US: toUS(snap.Quantile(0.95)),
		P99US: toUS(snap.Quantile(0.99)),
	}
	if snap.Count > 0 {
		sum.MeanUS = snap.Sum / float64(snap.Count) * 1e6
	}
	return sum
}
