package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// ErrStopScan, returned by a scan callback, stops the scan cleanly: the
// scanner returns the partial result with a nil error. Any other
// callback error aborts the scan and is propagated.
var ErrStopScan = errors.New("obs: stop audit scan")

// TornLine describes a record the reader could not parse — typically the
// crash-truncated last line of a segment.
type TornLine struct {
	// Path is the segment file.
	Path string `json:"path"`
	// Line is the 1-based line number.
	Line int `json:"line"`
	// Reason explains why the line was skipped.
	Reason string `json:"reason"`
	// Final reports whether the line was the last of its segment (the
	// expected crash shape; a torn line mid-file is stronger corruption).
	Final bool `json:"final"`
}

// ReadResult is the outcome of reading an audit chain.
type ReadResult struct {
	// Records are the parsed records in chain order.
	Records []AuditRecord
	// Torn lists the skipped lines.
	Torn []TornLine
	// Segments are the files read, in index order.
	Segments []Segment
	// Legacy counts records without a schema_id stamp (written before the
	// record schema was versioned). They parse fine; verifiers flag them.
	Legacy int
}

// ScanResult summarizes a streaming pass over an audit chain — everything
// ReadResult carries except the records themselves, which the per-record
// callback consumed as they went by. This is what lets auditctl list a
// multi-gigabyte trail without materializing it.
type ScanResult struct {
	// Segments are the files scanned, in index order.
	Segments []Segment
	// Records is the number of valid records seen.
	Records int
	// Legacy counts records without a schema_id stamp.
	Legacy int
	// Torn lists the skipped lines.
	Torn []TornLine
}

// scanSegment streams the records of one segment, invoking fn (which may
// be nil) for each parsed record. A line is torn when it fails to parse
// as JSON or — the crash signature — is the final line of the file
// without a trailing newline. displayPath labels torn lines (the on-disk
// path for directories, the in-pack name for pack file systems).
func scanSegment(fsys fs.FS, name, displayPath string, fn func(*AuditRecord) error) (records, legacy int, torn []TornLine, err error) {
	f, err := fsys.Open(name)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("obs: open audit segment: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, nil, fmt.Errorf("obs: stat audit segment: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	// Track the raw byte count consumed vs the file size to detect a
	// missing trailing newline on the last line.
	var consumed int64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		consumed += int64(len(line)) + 1 // +1 for the newline
		if len(line) == 0 {
			continue
		}
		var rec AuditRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			final := consumed >= info.Size()+1 // the +1 newline was assumed
			torn = append(torn, TornLine{
				Path: displayPath, Line: lineNo, Final: final,
				Reason: fmt.Sprintf("unparsable record: %v", err),
			})
			continue
		}
		// A syntactically valid document on an unterminated final line is
		// still suspect only if truncated mid-way; valid JSON that
		// consumed the whole file is accepted even without the newline.
		records++
		if rec.SchemaID == "" {
			legacy++
		}
		if fn != nil {
			if err := fn(&rec); err != nil {
				return records, legacy, torn, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return records, legacy, torn, fmt.Errorf("obs: scan audit segment %s: %w", displayPath, err)
	}
	return records, legacy, torn, nil
}

// readSegment parses one segment file into memory, skipping torn lines.
func readSegment(path string) ([]AuditRecord, []TornLine, error) {
	var recs []AuditRecord
	_, _, torn, err := scanSegment(os.DirFS(filepath.Dir(path)), filepath.Base(path), path,
		func(r *AuditRecord) error {
			recs = append(recs, *r)
			return nil
		})
	if err != nil {
		return nil, nil, err
	}
	return recs, torn, nil
}

// ScanAuditDir streams the whole audit chain under dir in segment order,
// invoking fn for every valid record. Only one line is held in memory at
// a time — the reader auditctl list/summarize uses on large trails.
func ScanAuditDir(dir string, fn func(*AuditRecord) error) (*ScanResult, error) {
	segments, err := AuditSegments(dir)
	if err != nil {
		return nil, err
	}
	res := &ScanResult{Segments: segments}
	fsys := os.DirFS(dir)
	for _, seg := range segments {
		n, legacy, torn, err := scanSegment(fsys, filepath.Base(seg.Path), seg.Path, fn)
		res.Records += n
		res.Legacy += legacy
		res.Torn = append(res.Torn, torn...)
		if errors.Is(err, ErrStopScan) {
			return res, nil
		}
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ReadAuditDir reads the whole audit chain under dir, in segment order,
// skipping (and reporting) torn lines.
func ReadAuditDir(dir string) (*ReadResult, error) {
	res := &ReadResult{}
	scan, err := ScanAuditDir(dir, func(r *AuditRecord) error {
		res.Records = append(res.Records, *r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Segments, res.Torn, res.Legacy = scan.Segments, scan.Torn, scan.Legacy
	return res, nil
}

// auditSegmentsFS lists audit segments at the root of fsys, sorted by
// index — the evidence-pack layout, where segments sit under segments/.
func auditSegmentsFS(fsys fs.FS) ([]Segment, error) {
	entries, err := fs.ReadDir(fsys, ".")
	if err != nil {
		return nil, fmt.Errorf("obs: read audit fs: %w", err)
	}
	var out []Segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "audit-%d.jsonl", &idx); err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("obs: stat audit segment: %w", err)
		}
		out = append(out, Segment{Path: e.Name(), Index: idx, Size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// ReadAuditFS reads an audit chain from any fs.FS whose root holds
// audit-*.jsonl segments — a directory, or the segments/ tree of an
// evidence pack (dir or zip; zip.Reader is an fs.FS).
func ReadAuditFS(fsys fs.FS) (*ReadResult, error) {
	segments, err := auditSegmentsFS(fsys)
	if err != nil {
		return nil, err
	}
	res := &ReadResult{Segments: segments}
	for _, seg := range segments {
		_, legacy, torn, err := scanSegment(fsys, seg.Path, seg.Path, func(r *AuditRecord) error {
			res.Records = append(res.Records, *r)
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Legacy += legacy
		res.Torn = append(res.Torn, torn...)
	}
	return res, nil
}

// VerifyResult reports the chain checks auditctl verify runs.
type VerifyResult struct {
	// Segments is the number of segment files.
	Segments int `json:"segments"`
	// Records is the number of valid records.
	Records int `json:"records"`
	// Legacy counts valid records without a schema_id stamp. Flagged but
	// not a problem: trails written before the schema existed must stay
	// verifiable.
	Legacy int `json:"legacy_records,omitempty"`
	// Torn lists skipped lines (crash-truncated tails).
	Torn []TornLine `json:"torn,omitempty"`
	// Problems lists chain violations: segment-index gaps, sequence
	// gaps or regressions, torn lines in non-final positions.
	Problems []string `json:"problems,omitempty"`
}

// OK reports whether the chain verified cleanly (torn final lines are
// themselves problems — a verifier must flag a crash-truncated record).
func (v *VerifyResult) OK() bool { return len(v.Problems) == 0 }

// TornTailOnly reports whether every problem is a crash-truncated final
// line — the expected shape after a crash, distinct (for exit codes)
// from mid-file corruption or a broken sequence chain.
func (v *VerifyResult) TornTailOnly() bool {
	if v.OK() {
		return false
	}
	finals := 0
	for _, t := range v.Torn {
		if !t.Final {
			return false
		}
		finals++
	}
	return len(v.Problems) == finals
}

// VerifyChain checks a read audit chain: segment indices must be
// contiguous, sequence numbers strictly increasing by one across the
// whole chain, every line parsable, and every stamped schema_id known.
// Torn lines are flagged as problems (the reader skipped them, but an
// auditor must know the trail has a hole).
func VerifyChain(res *ReadResult) *VerifyResult {
	out := &VerifyResult{
		Segments: len(res.Segments),
		Records:  len(res.Records),
		Legacy:   res.Legacy,
		Torn:     res.Torn,
	}
	for i := 1; i < len(res.Segments); i++ {
		if res.Segments[i].Index != res.Segments[i-1].Index+1 {
			out.Problems = append(out.Problems, fmt.Sprintf(
				"segment gap: %s jumps to %s",
				res.Segments[i-1].Path, res.Segments[i].Path))
		}
	}
	for i := 1; i < len(res.Records); i++ {
		prev, cur := res.Records[i-1].Seq, res.Records[i].Seq
		if cur != prev+1 {
			out.Problems = append(out.Problems, fmt.Sprintf(
				"sequence gap: record %d follows record %d", cur, prev))
		}
	}
	for _, r := range res.Records {
		if r.SchemaID != "" && r.SchemaID != AuditSchemaID {
			out.Problems = append(out.Problems, fmt.Sprintf(
				"record %d has unknown schema %q", r.Seq, r.SchemaID))
		}
	}
	for _, t := range res.Torn {
		kind := "torn final record"
		if !t.Final {
			kind = "corrupt mid-file record"
		}
		out.Problems = append(out.Problems, fmt.Sprintf(
			"%s: %s line %d (%s)", kind, t.Path, t.Line, t.Reason))
	}
	return out
}

// VerifyAuditDir reads and chain-checks the audit trail under dir.
func VerifyAuditDir(dir string) (*VerifyResult, error) {
	res, err := ReadAuditDir(dir)
	if err != nil {
		return nil, err
	}
	return VerifyChain(res), nil
}
