package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// TornLine describes a record the reader could not parse — typically the
// crash-truncated last line of a segment.
type TornLine struct {
	// Path is the segment file.
	Path string `json:"path"`
	// Line is the 1-based line number.
	Line int `json:"line"`
	// Reason explains why the line was skipped.
	Reason string `json:"reason"`
	// Final reports whether the line was the last of its segment (the
	// expected crash shape; a torn line mid-file is stronger corruption).
	Final bool `json:"final"`
}

// ReadResult is the outcome of reading an audit chain.
type ReadResult struct {
	// Records are the parsed records in chain order.
	Records []AuditRecord
	// Torn lists the skipped lines.
	Torn []TornLine
	// Segments are the files read, in index order.
	Segments []Segment
}

// readSegment parses one segment file, skipping torn lines. A line is
// torn when it fails to parse as JSON or — the crash signature — is the
// final line of the file without a trailing newline.
func readSegment(path string) ([]AuditRecord, []TornLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: open audit segment: %w", err)
	}
	defer f.Close()
	var (
		recs []AuditRecord
		torn []TornLine
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	// Track the raw byte count consumed vs the file size to detect a
	// missing trailing newline on the last line.
	info, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("obs: stat audit segment: %w", err)
	}
	var consumed int64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		consumed += int64(len(line)) + 1 // +1 for the newline
		if len(line) == 0 {
			continue
		}
		var rec AuditRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			final := consumed >= info.Size()+1 // the +1 newline was assumed
			torn = append(torn, TornLine{
				Path: path, Line: lineNo, Final: final,
				Reason: fmt.Sprintf("unparsable record: %v", err),
			})
			continue
		}
		// A syntactically valid document on an unterminated final line is
		// still suspect only if truncated mid-way; valid JSON that
		// consumed the whole file is accepted even without the newline.
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("obs: scan audit segment %s: %w", path, err)
	}
	return recs, torn, nil
}

// ReadAuditDir reads the whole audit chain under dir, in segment order,
// skipping (and reporting) torn lines.
func ReadAuditDir(dir string) (*ReadResult, error) {
	segments, err := AuditSegments(dir)
	if err != nil {
		return nil, err
	}
	res := &ReadResult{Segments: segments}
	for _, seg := range segments {
		recs, torn, err := readSegment(seg.Path)
		if err != nil {
			return nil, err
		}
		res.Records = append(res.Records, recs...)
		res.Torn = append(res.Torn, torn...)
	}
	return res, nil
}

// VerifyResult reports the chain checks auditctl verify runs.
type VerifyResult struct {
	// Segments is the number of segment files.
	Segments int `json:"segments"`
	// Records is the number of valid records.
	Records int `json:"records"`
	// Torn lists skipped lines (crash-truncated tails).
	Torn []TornLine `json:"torn,omitempty"`
	// Problems lists chain violations: segment-index gaps, sequence
	// gaps or regressions, torn lines in non-final positions.
	Problems []string `json:"problems,omitempty"`
}

// OK reports whether the chain verified cleanly (torn final lines are
// themselves problems — a verifier must flag a crash-truncated record).
func (v *VerifyResult) OK() bool { return len(v.Problems) == 0 }

// VerifyAuditDir checks the audit chain: segment indices must be
// contiguous, sequence numbers strictly increasing by one across the
// whole chain, and every line parsable. Torn lines are flagged as
// problems (the reader skipped them, but an auditor must know the trail
// has a hole).
func VerifyAuditDir(dir string) (*VerifyResult, error) {
	res, err := ReadAuditDir(dir)
	if err != nil {
		return nil, err
	}
	out := &VerifyResult{
		Segments: len(res.Segments),
		Records:  len(res.Records),
		Torn:     res.Torn,
	}
	for i := 1; i < len(res.Segments); i++ {
		if res.Segments[i].Index != res.Segments[i-1].Index+1 {
			out.Problems = append(out.Problems, fmt.Sprintf(
				"segment gap: %s jumps to %s",
				res.Segments[i-1].Path, res.Segments[i].Path))
		}
	}
	for i := 1; i < len(res.Records); i++ {
		prev, cur := res.Records[i-1].Seq, res.Records[i].Seq
		if cur != prev+1 {
			out.Problems = append(out.Problems, fmt.Sprintf(
				"sequence gap: record %d follows record %d", cur, prev))
		}
	}
	for _, t := range res.Torn {
		kind := "torn final record"
		if !t.Final {
			kind = "corrupt mid-file record"
		}
		out.Problems = append(out.Problems, fmt.Sprintf(
			"%s: %s line %d (%s)", kind, t.Path, t.Line, t.Reason))
	}
	return out, nil
}
