// Package obs is the observability substrate of the cloud monitor: the
// paper's Cloud Monitor exists to make security violations visible, and
// this package turns each monitored request into three durable signals —
//
//   - a per-request trace through the monitor pipeline (route match,
//     pre-state snapshot, pre-condition eval, forward, post-state
//     snapshot, post-condition eval), aggregated into per-stage
//     latency histograms with lock-free atomic buckets;
//
//   - a dependency-free Prometheus-text metrics registry (counters,
//     gauges, histograms) rendered on demand by an http.Handler, so a
//     deployed monitor or cloud exposes /metrics without pulling in a
//     client library;
//
//   - an append-only, size-rotated JSONL audit trail of every verdict
//     that is not a clean pass, each record carrying the SecReq IDs of
//     the contract it protects, the failing clause, the pre/post state
//     snapshots the verdict was computed from, and the stage timings —
//     the queryable evidence chain cmd/auditctl inspects.
//
// The hot path pays only atomic counter increments and a stack-allocated
// span array per request; the audit sink is consulted solely for non-OK
// outcomes, so a healthy deployment writes nothing.
package obs
