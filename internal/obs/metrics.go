package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter — the hot-path
// primitive the monitor's verdict and cache tallies are built on. The
// zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter (between runs; not atomic with respect to
// concurrent Adds, which is acceptable for run boundaries).
func (c *Counter) Reset() { c.v.Store(0) }

// KeyedCounter is a set of counters keyed by string (SecReq IDs,
// transition labels, fault kinds). Increments are lock-free after the
// first Add for a key.
type KeyedCounter struct {
	m sync.Map // string -> *atomic.Uint64
}

// Add increments the counter for key by n.
func (k *KeyedCounter) Add(key string, n uint64) {
	if c, ok := k.m.Load(key); ok {
		c.(*atomic.Uint64).Add(n)
		return
	}
	c, _ := k.m.LoadOrStore(key, new(atomic.Uint64))
	c.(*atomic.Uint64).Add(n)
}

// Value returns the count for key (zero when never incremented).
func (k *KeyedCounter) Value(key string) uint64 {
	if c, ok := k.m.Load(key); ok {
		return c.(*atomic.Uint64).Load()
	}
	return 0
}

// Snapshot returns a copy of all counters.
func (k *KeyedCounter) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	k.m.Range(func(key, val any) bool {
		out[key.(string)] = val.(*atomic.Uint64).Load()
		return true
	})
	return out
}

// Reset zeroes every counter.
func (k *KeyedCounter) Reset() {
	k.m.Range(func(_, val any) bool {
		val.(*atomic.Uint64).Store(0)
		return true
	})
}

// Label is one name="value" pair on a metric sample.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Registry collects metric producers and renders them in the Prometheus
// text exposition format. Producers are closures invoked at scrape time,
// so the registry holds no copies of hot-path state — it reads the same
// atomic counters the monitor maintains (one source of truth).
type Registry struct {
	mu         sync.Mutex
	collectors []func(w *MetricsWriter)
	constLbls  []Label
}

// Collect registers a producer invoked on every scrape.
func (r *Registry) Collect(f func(w *MetricsWriter)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// SetConstLabels attaches a constant label set to every sample the
// registry renders — histogram _bucket/_sum/_count series included. A
// fleet member identifies itself this way (instance="m-01") without any
// producer knowing it runs in a fleet. Labels are sorted by name; a
// per-sample label with the same name wins over the constant.
func (r *Registry) SetConstLabels(labels ...Label) {
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	r.mu.Lock()
	r.constLbls = sorted
	r.mu.Unlock()
}

// ConstLabels returns the registry's constant label set (nil when unset).
func (r *Registry) ConstLabels() []Label {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Label, len(r.constLbls))
	copy(out, r.constLbls)
	return out
}

// Render produces the full exposition document.
func (r *Registry) Render() string {
	r.mu.Lock()
	collectors := make([]func(w *MetricsWriter), len(r.collectors))
	copy(collectors, r.collectors)
	constLbls := r.constLbls
	r.mu.Unlock()
	w := &MetricsWriter{seen: make(map[string]bool), constLbls: constLbls}
	for _, f := range collectors {
		f(w)
	}
	return w.sb.String()
}

// Handler serves the registry at any path (mount it on /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}

// MetricsWriter accumulates exposition lines for one scrape. HELP/TYPE
// headers are emitted once per metric name regardless of how many
// producers contribute samples to it.
type MetricsWriter struct {
	sb        strings.Builder
	seen      map[string]bool
	constLbls []Label
}

// withConst merges the writer's constant labels into a sample's label
// set. Per-sample labels shadow a constant of the same name.
func (w *MetricsWriter) withConst(labels []Label) []Label {
	if len(w.constLbls) == 0 {
		return labels
	}
	merged := make([]Label, 0, len(labels)+len(w.constLbls))
	merged = append(merged, labels...)
	for _, c := range w.constLbls {
		shadowed := false
		for _, l := range labels {
			if l.Name == c.Name {
				shadowed = true
				break
			}
		}
		if !shadowed {
			merged = append(merged, c)
		}
	}
	return merged
}

// header writes the # HELP / # TYPE preamble once per name.
func (w *MetricsWriter) header(name, help, typ string) {
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	fmt.Fprintf(&w.sb, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&w.sb, "# TYPE %s %s\n", name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelString renders {a="b",c="d"} (empty string for no labels).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a sample value; integral floats print without an
// exponent so counter samples stay exact and diff-friendly.
func formatValue(v float64) string {
	if v == float64(uint64(v)) {
		return fmt.Sprintf("%d", uint64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Counter emits one counter sample.
func (w *MetricsWriter) Counter(name, help string, value float64, labels ...Label) {
	w.header(name, help, "counter")
	fmt.Fprintf(&w.sb, "%s%s %s\n", name, labelString(w.withConst(labels)), formatValue(value))
}

// Gauge emits one gauge sample.
func (w *MetricsWriter) Gauge(name, help string, value float64, labels ...Label) {
	w.header(name, help, "gauge")
	fmt.Fprintf(&w.sb, "%s%s %s\n", name, labelString(w.withConst(labels)), formatValue(value))
}

// KeyedCounter emits one counter sample per key of kc, with the key as
// the given label name. Keys are sorted for a stable document.
func (w *MetricsWriter) KeyedCounter(name, help string, kc *KeyedCounter, labelName string, labels ...Label) {
	snap := kc.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.Counter(name, help, float64(snap[k]), append([]Label{L(labelName, k)}, labels...)...)
	}
}

// Histogram emits the cumulative-bucket representation of h under name
// (with _bucket/_sum/_count suffixes, le labels in seconds).
func (w *MetricsWriter) Histogram(name, help string, h *Histogram, labels ...Label) {
	w.header(name, help, "histogram")
	snap := h.Snapshot()
	cum := uint64(0)
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		ls := w.withConst(append([]Label{L("le", formatLe(bound))}, labels...))
		fmt.Fprintf(&w.sb, "%s_bucket%s %d\n", name, labelString(ls), cum)
	}
	cum += snap.Counts[len(snap.Bounds)]
	ls := w.withConst(append([]Label{L("le", "+Inf")}, labels...))
	fmt.Fprintf(&w.sb, "%s_bucket%s %d\n", name, labelString(ls), cum)
	fmt.Fprintf(&w.sb, "%s_sum%s %g\n", name, labelString(w.withConst(labels)), snap.Sum)
	fmt.Fprintf(&w.sb, "%s_count%s %d\n", name, labelString(w.withConst(labels)), snap.Count)
}

// formatLe renders a bucket bound without trailing zeros.
func formatLe(v float64) string {
	return fmt.Sprintf("%g", v)
}
