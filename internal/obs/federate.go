package obs

import "strings"

// MergeExpositions concatenates several Prometheus text exposition
// documents into one, keeping a single # HELP / # TYPE header per metric
// name — the shape a fleet front's /metrics federation endpoint serves
// after scraping every instance. Sample lines pass through verbatim (each
// instance's registry already distinguishes its series with a constant
// instance label), so the merged document parses with ParseText and sums
// with CounterByLabel exactly like a single registry's output.
func MergeExpositions(docs ...string) string {
	var sb strings.Builder
	seenHeader := make(map[string]bool)
	for _, doc := range docs {
		for _, line := range strings.Split(doc, "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
				fields := strings.Fields(line)
				if len(fields) >= 3 {
					key := fields[1] + " " + fields[2]
					if seenHeader[key] {
						continue
					}
					seenHeader[key] = true
				}
			}
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
