package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecord(outcome string) *AuditRecord {
	return &AuditRecord{
		Trigger:  "DELETE(volume)",
		Method:   "DELETE",
		Resource: "volume",
		Outcome:  outcome,
		SecReqs:  []string{"1.4"},
		Detail:   "pre-condition failed",
		Pre:      map[string]string{"project.volumes": "Set{v1}"},
		StageNanos: map[string]int64{
			"route_match": 1200,
			"pre_eval":    8400,
		},
	}
}

func TestAuditAppendAndRead(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		log.Append(testRecord("blocked"))
	}
	log.Append(testRecord("violation:postcondition"))
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	counts := log.Counts()
	if counts["blocked"] != 5 || counts["violation:postcondition"] != 1 {
		t.Fatalf("Counts() = %v", counts)
	}

	res, err := ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 || len(res.Torn) != 0 {
		t.Fatalf("read %d records, %d torn", len(res.Records), len(res.Torn))
	}
	for i, rec := range res.Records {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if rec.Time == 0 {
			t.Fatalf("record %d has no timestamp", i)
		}
	}
	if res.Records[0].StageNanos["pre_eval"] != 8400 {
		t.Fatalf("stage timings lost: %v", res.Records[0].StageNanos)
	}

	ver, err := VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ver.OK() {
		t.Fatalf("verify problems: %v", ver.Problems)
	}
}

func TestAuditRotation(t *testing.T) {
	dir := t.TempDir()
	// A record is ~250 bytes; 1 KiB segments force rotation every few
	// appends.
	log, err := OpenAuditLog(dir, 1024)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		log.Append(testRecord("rejected"))
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	segments, err := AuditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segments))
	}
	for _, seg := range segments {
		if seg.Size > 1024+600 {
			t.Errorf("segment %s is %d bytes, way past the 1 KiB bound", seg.Path, seg.Size)
		}
	}
	// The chain must stay contiguous across the rotation boundaries.
	ver, err := VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ver.OK() || ver.Records != n || ver.Segments != len(segments) {
		t.Fatalf("verify = %+v, problems %v", ver, ver.Problems)
	}
}

func TestAuditResume(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(testRecord("blocked"))
	log.Append(testRecord("blocked"))
	log.Close()

	// Reopen: the sequence continues, and writes land in a new segment.
	log2, err := OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	log2.Append(testRecord("error"))
	log2.Close()

	res, err := ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 || res.Records[2].Seq != 3 {
		t.Fatalf("resume broke the chain: %d records, last seq %d",
			len(res.Records), res.Records[len(res.Records)-1].Seq)
	}
	if len(res.Segments) != 2 {
		t.Fatalf("reopen must start a fresh segment, got %d", len(res.Segments))
	}
	ver, err := VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ver.OK() {
		t.Fatalf("verify problems: %v", ver.Problems)
	}
}

// TestAuditCrashTruncation simulates a crash mid-write: the segment's
// last line is cut short. The reader must skip the torn record and keep
// every whole one; the verifier must flag the hole.
func TestAuditCrashTruncation(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		log.Append(testRecord("blocked"))
	}
	log.Close()

	segments, err := AuditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segments[0].Path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the final newline plus half the last record.
	cut := len(data) - 1 - len(data)/8
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("reader kept %d records, want 3 whole ones", len(res.Records))
	}
	if len(res.Torn) != 1 {
		t.Fatalf("reader reported %d torn lines, want 1", len(res.Torn))
	}
	if !res.Torn[0].Final {
		t.Errorf("torn line not marked final: %+v", res.Torn[0])
	}

	ver, err := VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ver.OK() {
		t.Fatal("verify passed a truncated chain")
	}
	found := false
	for _, p := range ver.Problems {
		if strings.Contains(p, "torn final record") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems = %v, want a torn-final-record entry", ver.Problems)
	}

	// Reopening after the crash must resume after the last whole record
	// and never append to the torn segment.
	log2, err := OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	log2.Append(testRecord("blocked"))
	log2.Close()
	res2, err := ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := res2.Records[len(res2.Records)-1]
	if last.Seq != 4 {
		t.Fatalf("resumed seq = %d, want 4 (after 3 whole records)", last.Seq)
	}
	if len(res2.Segments) != 2 {
		t.Fatalf("crash recovery must write a fresh segment, got %d", len(res2.Segments))
	}
}

// TestAuditMidFileCorruption: a corrupt line with valid records after it
// is stronger than a crash tail and must be reported as such.
func TestAuditMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		log.Append(testRecord("blocked"))
	}
	log.Close()
	segments, _ := AuditSegments(dir)
	path := segments[0].Path
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = "{corrupted" + "\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	ver, err := VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ver.OK() {
		t.Fatal("verify passed a corrupt chain")
	}
	foundCorrupt, foundGap := false, false
	for _, p := range ver.Problems {
		if strings.Contains(p, "corrupt mid-file record") {
			foundCorrupt = true
		}
		if strings.Contains(p, "sequence gap") {
			foundGap = true
		}
	}
	if !foundCorrupt || !foundGap {
		t.Fatalf("problems = %v, want corrupt-mid-file and sequence-gap entries", ver.Problems)
	}
}

func TestAuditSegmentsIgnoresStrangers(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "audit-000009.jsonl.d"), 0o755); err != nil {
		t.Fatal(err)
	}
	log, err := OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(testRecord("blocked"))
	log.Close()
	segments, err := AuditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) != 1 {
		t.Fatalf("AuditSegments = %+v, want just the real segment", segments)
	}
}

func TestVerifySegmentGap(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenAuditLog(dir, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		log.Append(testRecord("blocked"))
	}
	log.Close()
	segments, _ := AuditSegments(dir)
	if len(segments) < 3 {
		t.Fatalf("need 3+ segments, got %d", len(segments))
	}
	if err := os.Remove(segments[1].Path); err != nil {
		t.Fatal(err)
	}
	ver, err := VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ver.OK() {
		t.Fatal("verify passed a chain with a deleted segment")
	}
	foundSeg := false
	for _, p := range ver.Problems {
		if strings.Contains(p, "segment gap") {
			foundSeg = true
		}
	}
	if !foundSeg {
		t.Fatalf("problems = %v, want a segment-gap entry", ver.Problems)
	}
}
