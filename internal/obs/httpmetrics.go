package obs

import (
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// HTTPMetrics is a counting middleware for a served API (cloudsim wraps
// its cloud handler in one): requests tallied by method and status
// class, latencies folded into one histogram. All hot-path updates are
// atomic.
type HTTPMetrics struct {
	requests KeyedCounter // "METHOD status" -> count
	latency  *Histogram
}

// NewHTTPMetrics builds the middleware state.
func NewHTTPMetrics() *HTTPMetrics {
	return &HTTPMetrics{latency: NewDurationHistogram()}
}

// statusRecorder captures the response code written by the wrapped
// handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Wrap instruments next.
func (m *HTTPMetrics) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		m.requests.Add(r.Method+" "+strconv.Itoa(rec.status), 1)
		m.latency.Observe(time.Since(start))
	})
}

// Register wires the middleware's metrics into a registry under the
// given metric-name prefix (e.g. "cloudsim").
func (m *HTTPMetrics) Register(reg *Registry, prefix string) {
	reg.Collect(func(w *MetricsWriter) {
		snap := m.requests.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			method, status, _ := strings.Cut(key, " ")
			w.Counter(prefix+"_requests_total", "Requests served by method and status.",
				float64(snap[key]), L("method", method), L("status", status))
		}
		w.Histogram(prefix+"_request_duration_seconds", "Request service time.", m.latency)
	})
}
