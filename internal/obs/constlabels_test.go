package obs

import (
	"strings"
	"testing"
	"time"
)

// TestConstLabelsRoundTrip renders a registry carrying a constant
// instance label and parses it back: every sample — counters, keyed
// counters, gauges, and all three histogram series — must carry the
// label, and values must survive the round trip.
func TestConstLabelsRoundTrip(t *testing.T) {
	var c Counter
	c.Add(42)
	var kc KeyedCounter
	kc.Add("ok", 7)
	kc.Add("blocked", 3)
	h := NewDurationHistogram()
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)

	reg := &Registry{}
	reg.SetConstLabels(L("instance", "m-01"))
	reg.Collect(func(w *MetricsWriter) {
		w.Counter("t_total", "a counter", float64(c.Value()))
		w.KeyedCounter("t_verdicts_total", "keyed", &kc, "outcome")
		w.Gauge("t_gauge", "a gauge", 1.5)
		w.Histogram("t_latency_seconds", "a histogram", h)
	})

	text := reg.Render()
	samples, err := ParseText([]byte(text))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	if len(samples) == 0 {
		t.Fatal("no samples rendered")
	}
	for _, s := range samples {
		if s.Label("instance") != "m-01" {
			t.Errorf("sample %s%v lacks the constant instance label", s.Name, s.Labels)
		}
	}
	if got := CounterByLabel(samples, "t_verdicts_total", "outcome"); got["ok"] != 7 || got["blocked"] != 3 {
		t.Errorf("keyed counter round trip: got %v", got)
	}
	if got := Find(samples, "t_total"); len(got) != 1 || got[0].Value != 42 {
		t.Errorf("counter round trip: got %v", got)
	}
	snap, ok := HistogramFromSamples(samples, "t_latency_seconds", "instance", "m-01")
	if !ok {
		t.Fatal("histogram did not survive the instance-selector round trip")
	}
	if snap.Count != 2 {
		t.Errorf("histogram count = %d, want 2", snap.Count)
	}
}

// TestConstLabelsShadowing: a per-sample label of the same name beats the
// constant, and an unset registry renders no extra labels.
func TestConstLabelsShadowing(t *testing.T) {
	reg := &Registry{}
	reg.SetConstLabels(L("instance", "m-01"))
	reg.Collect(func(w *MetricsWriter) {
		w.Counter("t_total", "c", 1, L("instance", "override"))
	})
	if text := reg.Render(); !strings.Contains(text, `instance="override"`) ||
		strings.Contains(text, `instance="m-01"`) {
		t.Errorf("per-sample label did not shadow the constant:\n%s", text)
	}

	plain := &Registry{}
	plain.Collect(func(w *MetricsWriter) { w.Counter("t_total", "c", 1) })
	if text := plain.Render(); strings.Contains(text, "{") {
		t.Errorf("registry without const labels rendered labels:\n%s", text)
	}
}

// TestMergeExpositions merges two instance documents: one header per
// metric, every sample kept, and the merged text still parses and sums.
func TestMergeExpositions(t *testing.T) {
	docs := make([]string, 2)
	for i, id := range []string{"m-00", "m-01"} {
		var c Counter
		c.Add(uint64(10 * (i + 1)))
		reg := &Registry{}
		reg.SetConstLabels(L("instance", id))
		reg.Collect(func(w *MetricsWriter) {
			w.Counter("t_requests_total", "requests", float64(c.Value()))
		})
		docs[i] = reg.Render()
	}
	merged := MergeExpositions(docs...)
	if n := strings.Count(merged, "# HELP t_requests_total"); n != 1 {
		t.Errorf("HELP header appears %d times, want 1\n%s", n, merged)
	}
	if n := strings.Count(merged, "# TYPE t_requests_total"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1\n%s", n, merged)
	}
	samples, err := ParseText([]byte(merged))
	if err != nil {
		t.Fatalf("merged document does not parse: %v\n%s", err, merged)
	}
	byInst := CounterByLabel(samples, "t_requests_total", "instance")
	if byInst["m-00"] != 10 || byInst["m-01"] != 20 {
		t.Errorf("merged per-instance sums: got %v", byInst)
	}
}
