package faults_test

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"cloudmon/internal/faults"
	"cloudmon/internal/loadgen"
	"cloudmon/internal/monitor"
	"cloudmon/internal/osclient"
)

// The matrix drives one monitored GET through a deployment whose
// snapshot traffic is broken by each fault kind in turn, under each
// degradation policy, and asserts the exact verdict and counter the
// combination must produce.
//
// The fault rules are scoped to the identity token-validation GET
// (/identity/v3/auth/tokens), which only the snapshot path touches: the
// pre-state needs user.id.groups for the Table-I guards, while the
// forwarded volume request never goes near identity. That isolates
// "snapshot failed" from "forward failed", which is the distinction the
// policies are about.
const snapshotOnlyPath = "/identity/v3/auth/tokens"

// matrixKinds are the failure modes under test. Latency is sized to
// overrun the per-attempt deadline below, so it degenerates into a
// snapshot timeout rather than a slow success.
func matrixRule(kind faults.Kind) faults.Rule {
	r := faults.Rule{Kind: kind, Method: http.MethodGet, Path: snapshotOnlyPath, Every: 1}
	if kind == faults.KindLatency {
		r.LatencyMS = 600
	}
	return r
}

// deployCell builds a fresh deployment for one matrix cell.
func deployCell(t *testing.T, kind faults.Kind, policy monitor.FailPolicy) *loadgen.Deployment {
	t.Helper()
	opts := loadgen.DeployOptions{
		Level:        monitor.CheckPreOnly,
		FailPolicy:   policy,
		CloudTimeout: 200 * time.Millisecond,
		Retry:        osclient.RetryPolicy{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond},
		Faults:       &faults.Profile{Rules: []faults.Rule{matrixRule(kind)}},
	}
	if policy == monitor.Degrade {
		opts.PreStateCacheTTL = 30 * time.Millisecond
		opts.DegradeTTL = 10 * time.Second
	}
	dep, err := loadgen.Deploy(opts)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return dep
}

// adminClient aims an authenticated admin client at the monitor proxy.
func adminClient(dep *loadgen.Deployment) *osclient.Client {
	return &osclient.Client{
		BaseURL:    dep.Target.BaseURL,
		Token:      dep.Target.Tokens[loadgen.RoleAdmin],
		HTTPClient: dep.Target.HTTPClient,
	}
}

func mustCreateVolume(t *testing.T, c *osclient.Client, projectID string) string {
	t.Helper()
	in := map[string]map[string]any{"volume": {"name": "matrix", "size": 1}}
	var out struct {
		Volume struct {
			ID string `json:"id"`
		} `json:"volume"`
	}
	if _, err := c.Do(http.MethodPost, "/projects/"+projectID+"/volumes", in, &out, nil); err != nil {
		t.Fatalf("create volume: %v", err)
	}
	return out.Volume.ID
}

func TestFaultPolicyMatrix(t *testing.T) {
	kinds := []faults.Kind{
		faults.KindLatency,
		faults.KindStatus,
		faults.KindReset,
		faults.KindMalformed,
		faults.KindTokenExpiry,
	}
	policies := []monitor.FailPolicy{monitor.FailClosed, monitor.FailOpen, monitor.Degrade}

	for _, kind := range kinds {
		for _, policy := range policies {
			t.Run(fmt.Sprintf("%s/%s", kind, policy), func(t *testing.T) {
				t.Parallel()
				dep := deployCell(t, kind, policy)
				mon := dep.Sys.Monitor

				// Phase 1, faults off: seed a volume and warm the
				// pre-state cache with an identical read.
				dep.Injector.SetEnabled(false)
				admin := adminClient(dep)
				volPath := "/projects/" + dep.ProjectID + "/volumes/" + mustCreateVolume(t, admin, dep.ProjectID)
				if status, err := admin.Do(http.MethodGet, volPath, nil, nil, nil); err != nil || status != http.StatusOK {
					t.Fatalf("warm read: status %d err %v", status, err)
				}
				if policy == monitor.Degrade {
					// Let the read-cache TTL lapse so the chaotic read
					// must attempt (and fail) a live snapshot, landing in
					// the degrade window.
					time.Sleep(40 * time.Millisecond)
				}

				// Phase 2, faults on: the same read with every snapshot
				// sabotaged.
				dep.Injector.SetEnabled(true)
				before := mon.Outcomes()
				status, err := admin.Do(http.MethodGet, volPath, nil, nil, nil)
				after := mon.Outcomes()

				log := mon.Log()
				if len(log) == 0 {
					t.Fatal("no verdicts recorded")
				}
				v := log[len(log)-1]

				var wantOutcome monitor.Outcome
				switch policy {
				case monitor.FailClosed:
					wantOutcome = monitor.Error
					if err == nil || status != http.StatusBadGateway {
						t.Errorf("status %d err %v, want 502 (fail-closed must not serve)", status, err)
					}
					if v.Forwarded {
						t.Error("fail-closed forwarded a request whose snapshot failed")
					}
				case monitor.FailOpen:
					wantOutcome = monitor.Unverified
					if err != nil || status != http.StatusOK {
						t.Errorf("status %d err %v, want 200 (fail-open must forward)", status, err)
					}
					if !v.Forwarded {
						t.Error("fail-open verdict not marked Forwarded")
					}
				case monitor.Degrade:
					wantOutcome = monitor.OK
					if err != nil || status != http.StatusOK {
						t.Errorf("status %d err %v, want 200 (degrade must serve from cache)", status, err)
					}
					if !v.DegradedPre {
						t.Error("degrade verdict not marked DegradedPre")
					}
					if !v.Forwarded {
						t.Error("degrade verdict not marked Forwarded")
					}
				}
				if v.Outcome != wantOutcome {
					t.Errorf("outcome %s (detail %q), want %s", v.Outcome, v.Detail, wantOutcome)
				}
				if d := after[wantOutcome] - before[wantOutcome]; d != 1 {
					t.Errorf("counter %s moved by %d, want 1", wantOutcome, d)
				}
				if n := dep.Injector.Counts()[string(kind)]; n < 1 {
					t.Errorf("injector never fired %s (counts %v)", kind, dep.Injector.Counts())
				}
			})
		}
	}
}
