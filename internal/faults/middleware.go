package faults

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// ErrInjectedReset is the transport-level error an injected connection
// reset surfaces through a RoundTripper.
var ErrInjectedReset = errors.New("faults: injected connection reset")

// timeoutError is the transport-level error for an injected hang that hit
// its cap; it satisfies net.Error's Timeout contract.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faults: injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// statusBody synthesizes an OpenStack-style error document.
func statusBody(status int, msg string) []byte {
	return []byte(fmt.Sprintf(`{"error": {"code": %d, "message": %q}}`, status, msg))
}

// corrupt rewrites a response body according to the fault kind.
func corrupt(kind Kind, body []byte) []byte {
	switch kind {
	case KindTruncate:
		if len(body) < 2 {
			return []byte("{")
		}
		return body[:len(body)/2]
	case KindMalformed:
		return []byte(`{"volumes": [}`)
	}
	return body
}

// RoundTripper wraps next with the injector: faults are applied between
// the caller and the backend, exactly where a flaky network or cloud
// would sit. A nil next means http.DefaultTransport.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{in: in, next: next}
}

type transport struct {
	in   *Injector
	next http.RoundTripper
}

var _ http.RoundTripper = (*transport)(nil)

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.in.decide(req.Method, req.URL.Path)
	if d == nil {
		return t.next.RoundTrip(req)
	}
	switch d.kind {
	case KindLatency:
		select {
		case <-time.After(d.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.next.RoundTrip(req)
	case KindReset:
		return nil, ErrInjectedReset
	case KindTimeout:
		// Hold the request until the caller gives up (or the cap fires,
		// so deadline-less callers cannot hang forever).
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.delay):
			return nil, timeoutError{}
		}
	case KindStatus:
		return synthesized(req, d.status, statusBody(d.status, "injected fault: service failure")), nil
	case KindTokenExpiry:
		return synthesized(req, http.StatusUnauthorized,
			statusBody(http.StatusUnauthorized, "injected fault: the request you have made requires authentication")), nil
	case KindTruncate, KindMalformed:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		data = corrupt(d.kind, data)
		resp.Body = io.NopCloser(bytes.NewReader(data))
		resp.ContentLength = int64(len(data))
		resp.Header.Set("Content-Length", strconv.Itoa(len(data)))
		return resp, nil
	}
	return t.next.RoundTrip(req)
}

// synthesized builds a backend-less JSON response.
func synthesized(req *http.Request, status int, body []byte) *http.Response {
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Middleware wraps next with the injector on the server side: cloudsim
// mounts this so external monitors experience the same fault schedule
// over real sockets.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := in.decide(r.Method, r.URL.Path)
		if d == nil {
			next.ServeHTTP(w, r)
			return
		}
		switch d.kind {
		case KindLatency:
			select {
			case <-time.After(d.delay):
			case <-r.Context().Done():
				return
			}
			next.ServeHTTP(w, r)
		case KindReset:
			abort(w)
		case KindTimeout:
			select {
			case <-r.Context().Done():
			case <-time.After(d.delay):
			}
			abort(w)
		case KindStatus:
			writeRaw(w, d.status, statusBody(d.status, "injected fault: service failure"))
		case KindTokenExpiry:
			writeRaw(w, http.StatusUnauthorized,
				statusBody(http.StatusUnauthorized, "injected fault: the request you have made requires authentication"))
		case KindTruncate, KindMalformed:
			rec := &bodyRecorder{header: make(http.Header), status: http.StatusOK}
			next.ServeHTTP(rec, r)
			body := corrupt(d.kind, rec.body.Bytes())
			for k, vals := range rec.header {
				if k == "Content-Length" {
					continue
				}
				for _, v := range vals {
					w.Header().Add(k, v)
				}
			}
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(rec.status)
			_, _ = w.Write(body)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// abort drops the connection without a response: hijack-and-close when the
// server supports it, otherwise the net/http abort panic (which the server
// — and httpkit's in-process transport — turns into a closed connection).
func abort(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// writeRaw writes a pre-encoded JSON body.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// bodyRecorder buffers a downstream handler's response so the middleware
// can corrupt it before it reaches the wire.
type bodyRecorder struct {
	header http.Header
	body   bytes.Buffer
	status int
	wrote  bool
}

var _ http.ResponseWriter = (*bodyRecorder)(nil)

// Header implements http.ResponseWriter.
func (r *bodyRecorder) Header() http.Header { return r.header }

// WriteHeader implements http.ResponseWriter.
func (r *bodyRecorder) WriteHeader(status int) {
	if r.wrote {
		return
	}
	r.wrote = true
	r.status = status
}

// Write implements http.ResponseWriter.
func (r *bodyRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.body.Write(p)
}
