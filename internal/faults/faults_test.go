package faults

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeBackend is a canned RoundTripper: always 200 with a small JSON
// document, and it counts how often it was reached.
type fakeBackend struct {
	calls int
	body  string
}

func (f *fakeBackend) RoundTrip(req *http.Request) (*http.Response, error) {
	f.calls++
	body := f.body
	if body == "" {
		body = `{"volumes": [{"id": "v1", "name": "alpha", "size": 1}]}`
	}
	return synthesized(req, http.StatusOK, []byte(body)), nil
}

func get(t *testing.T, rt http.RoundTripper, path string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://cloud.internal"+path, nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	return rt.RoundTrip(req)
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
	}{
		{"no rules", Profile{}},
		{"unknown kind", Profile{Rules: []Rule{{Kind: "explode", Probability: 1}}}},
		{"probability above one", Profile{Rules: []Rule{{Kind: KindStatus, Probability: 1.5}}}},
		{"never fires", Profile{Rules: []Rule{{Kind: KindStatus}}}},
		{"negative every", Profile{Rules: []Rule{{Kind: KindStatus, Every: -1, Probability: 0.5}}}},
		{"status outside 4xx/5xx", Profile{Rules: []Rule{{Kind: KindStatus, Probability: 1, Status: 200}}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
	ok := Profile{Seed: 1, Rules: []Rule{{Kind: KindLatency, Probability: 0.2, LatencyMS: 5}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestParseProfileRoundTrip(t *testing.T) {
	src := `{"seed": 42, "rules": [
		{"kind": "status", "method": "GET", "path": "/volume/", "probability": 0.25, "status": 502},
		{"kind": "latency", "every": 10, "latency_ms": 5, "jitter_ms": 3}
	]}`
	p, err := ParseProfile([]byte(src))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.Seed != 42 || len(p.Rules) != 2 {
		t.Fatalf("got seed %d, %d rules; want 42, 2", p.Seed, len(p.Rules))
	}
	if p.Rules[0].Kind != KindStatus || p.Rules[0].Status != 502 {
		t.Fatalf("rule 0 = %+v", p.Rules[0])
	}
}

// TestSeededScheduleDeterminism replays the same request order through two
// injectors built from the same profile and demands an identical fault
// sequence — the property that makes chaos runs reproducible.
func TestSeededScheduleDeterminism(t *testing.T) {
	profile := &Profile{Seed: 7, Rules: []Rule{
		{Kind: KindStatus, Method: http.MethodGet, Probability: 0.3},
		{Kind: KindReset, Probability: 0.2},
	}}
	sequence := func() []Kind {
		in := NewInjector(profile)
		var seq []Kind
		for i := 0; i < 500; i++ {
			method := http.MethodGet
			if i%3 == 0 {
				method = http.MethodPost
			}
			d := in.decide(method, "/volume/v3/p/volumes")
			if d == nil {
				seq = append(seq, "")
			} else {
				seq = append(seq, d.kind)
			}
		}
		return seq
	}
	a, b := sequence(), sequence()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d: %q vs %q", i, a[i], b[i])
		}
		if a[i] != "" {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("schedule fired no faults; the test proved nothing")
	}

	diff := NewInjector(&Profile{Seed: 8, Rules: profile.Rules})
	diverged := false
	for i := 0; i < 500; i++ {
		method := http.MethodGet
		if i%3 == 0 {
			method = http.MethodPost
		}
		d := diff.decide(method, "/volume/v3/p/volumes")
		k := Kind("")
		if d != nil {
			k = d.kind
		}
		if k != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seed replayed the same schedule")
	}
}

// TestEveryFiresDeterministically pins the Nth-request discipline and the
// burst extension: every 5th match fires, and a burst of 3 covers the two
// following requests too.
func TestEveryFiresDeterministically(t *testing.T) {
	in := NewInjector(&Profile{Rules: []Rule{
		{Kind: KindStatus, Every: 5, Burst: 3},
	}})
	var fired []int
	for i := 1; i <= 20; i++ {
		if in.decide(http.MethodGet, "/x") != nil {
			fired = append(fired, i)
		}
	}
	want := []int{5, 6, 7, 10, 11, 12, 15, 16, 17, 20}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if got := in.Counts()[string(KindStatus)]; got != len(want) {
		t.Fatalf("Counts()[status] = %d, want %d", got, len(want))
	}
	if in.Total() != len(want) {
		t.Fatalf("Total() = %d, want %d", in.Total(), len(want))
	}
}

func TestRuleMatching(t *testing.T) {
	in := NewInjector(&Profile{Rules: []Rule{
		{Kind: KindStatus, Method: http.MethodDelete, Path: "/volumes/", Every: 1},
	}})
	if d := in.decide(http.MethodGet, "/volume/v3/p/volumes/v1"); d != nil {
		t.Fatal("method filter ignored")
	}
	if d := in.decide(http.MethodDelete, "/identity/v3/auth/tokens"); d != nil {
		t.Fatal("path filter ignored")
	}
	if d := in.decide(http.MethodDelete, "/volume/v3/p/volumes/v1"); d == nil {
		t.Fatal("matching request did not fire")
	}
}

func TestSetEnabledSuspendsInjection(t *testing.T) {
	in := NewInjector(&Profile{Rules: []Rule{{Kind: KindStatus, Every: 1}}})
	in.SetEnabled(false)
	for i := 0; i < 5; i++ {
		if in.decide(http.MethodGet, "/x") != nil {
			t.Fatal("disabled injector fired")
		}
	}
	in.SetEnabled(true)
	if in.decide(http.MethodGet, "/x") == nil {
		t.Fatal("re-enabled injector did not fire")
	}
}

func TestRoundTripperStatusFault(t *testing.T) {
	backend := &fakeBackend{}
	in := NewInjector(&Profile{Rules: []Rule{{Kind: KindStatus, Every: 2, Status: 502}}})
	rt := in.RoundTripper(backend)

	resp, err := get(t, rt, "/volumes")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request 1: status %v err %v, want 200 pass-through", resp, err)
	}
	resp.Body.Close()

	resp, err = get(t, rt, "/volumes")
	if err != nil {
		t.Fatalf("request 2: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("request 2: status %d, want 502", resp.StatusCode)
	}
	var doc struct {
		Error struct {
			Code    int    `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("synthesized body is not JSON: %v", err)
	}
	if doc.Error.Code != 502 {
		t.Fatalf("body code %d, want 502", doc.Error.Code)
	}
	if backend.calls != 1 {
		t.Fatalf("backend reached %d times, want 1 (status fault must not forward)", backend.calls)
	}
}

func TestRoundTripperTokenExpiry(t *testing.T) {
	backend := &fakeBackend{}
	in := NewInjector(&Profile{Rules: []Rule{{Kind: KindTokenExpiry, Every: 1}}})
	resp, err := get(t, in.RoundTripper(backend), "/volumes")
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status %d, want 401", resp.StatusCode)
	}
	if backend.calls != 0 {
		t.Fatal("token-expiry fault reached the backend")
	}
}

func TestRoundTripperReset(t *testing.T) {
	in := NewInjector(&Profile{Rules: []Rule{{Kind: KindReset, Every: 1}}})
	_, err := get(t, in.RoundTripper(&fakeBackend{}), "/volumes")
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
}

func TestRoundTripperTimeoutHonorsCallerDeadline(t *testing.T) {
	in := NewInjector(&Profile{Rules: []Rule{{Kind: KindTimeout, Every: 1, LatencyMS: 10_000}}})
	rt := in.RoundTripper(&fakeBackend{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://cloud.internal/volumes", nil)
	start := time.Now()
	_, err := rt.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hang outlived the caller deadline by far: %v", elapsed)
	}
}

func TestRoundTripperTimeoutCapForDeadlinelessCallers(t *testing.T) {
	in := NewInjector(&Profile{Rules: []Rule{{Kind: KindTimeout, Every: 1, LatencyMS: 15}}})
	_, err := get(t, in.RoundTripper(&fakeBackend{}), "/volumes")
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net.Error with Timeout() == true", err)
	}
}

func TestRoundTripperLatencyDelaysThenForwards(t *testing.T) {
	backend := &fakeBackend{}
	in := NewInjector(&Profile{Rules: []Rule{{Kind: KindLatency, Every: 1, LatencyMS: 30}}})
	start := time.Now()
	resp, err := get(t, in.RoundTripper(backend), "/volumes")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status %v err %v, want 200", resp, err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency fault added only %v, want >= 30ms", elapsed)
	}
	if backend.calls != 1 {
		t.Fatal("latency fault must still reach the backend")
	}
}

func TestRoundTripperCorruptsBodies(t *testing.T) {
	for _, kind := range []Kind{KindTruncate, KindMalformed} {
		t.Run(string(kind), func(t *testing.T) {
			in := NewInjector(&Profile{Rules: []Rule{{Kind: kind, Every: 1}}})
			resp, err := get(t, in.RoundTripper(&fakeBackend{}), "/volumes")
			if err != nil {
				t.Fatalf("round trip: %v", err)
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatalf("read body: %v", err)
			}
			var v any
			if err := json.Unmarshal(data, &v); err == nil {
				t.Fatalf("corrupted body still parses: %q", data)
			}
			if resp.ContentLength != int64(len(data)) {
				t.Fatalf("ContentLength %d != body %d", resp.ContentLength, len(data))
			}
		})
	}
}

func TestMiddlewareOverSockets(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"volumes": [{"id": "v1"}]}`)
	})

	t.Run("status", func(t *testing.T) {
		in := NewInjector(&Profile{Rules: []Rule{{Kind: KindStatus, Every: 1, Status: 503}}})
		srv := httptest.NewServer(in.Middleware(next))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/volumes")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
	})

	t.Run("reset", func(t *testing.T) {
		in := NewInjector(&Profile{Rules: []Rule{{Kind: KindReset, Every: 1}}})
		srv := httptest.NewServer(in.Middleware(next))
		defer srv.Close()
		_, err := http.Get(srv.URL + "/volumes")
		if err == nil {
			t.Fatal("reset fault produced a response over a real socket")
		}
	})

	t.Run("truncate", func(t *testing.T) {
		in := NewInjector(&Profile{Rules: []Rule{{Kind: KindTruncate, Every: 1}}})
		srv := httptest.NewServer(in.Middleware(next))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/volumes")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var v any
		if err := json.Unmarshal(data, &v); err == nil {
			t.Fatalf("truncated body still parses: %q", data)
		}
	})

	t.Run("passthrough", func(t *testing.T) {
		in := NewInjector(&Profile{Rules: []Rule{{Kind: KindStatus, Method: http.MethodDelete, Every: 1}}})
		srv := httptest.NewServer(in.Middleware(next))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/volumes")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"v1"`) {
			t.Fatalf("pass-through mangled the response: %d %q", resp.StatusCode, data)
		}
	})
}
