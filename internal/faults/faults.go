// Package faults is the fault-injection layer of the load and chaos
// harness: a composable http.Handler / http.RoundTripper middleware that
// perturbs traffic between the monitor and the cloud with the failure
// modes a real deployment sees — added latency, 5xx bursts, connection
// resets, hangs that outlive the caller's deadline, truncated or malformed
// JSON bodies, and expired-token responses.
//
// Faults are driven by a Profile: an ordered list of Rules, each matching
// a method/path slice of the traffic and firing either probabilistically
// (Probability, drawn from a seeded RNG so a profile replays the same
// fault schedule for the same request order) or deterministically (Every
// Nth matching request). A fired rule can extend over a Burst of
// consecutive matching requests, modelling correlated outages rather than
// independent coin flips.
//
// The same Profile wires into both ends of the stack: cmd/cloudsim wraps
// its handler with Injector.Middleware (faults on the wire), and the
// in-process loadgen deployment wraps the monitor's cloud transport with
// Injector.RoundTripper (faults between monitor and cloud, no sockets
// needed). Injected faults are tallied per kind for reports and test
// assertions.
package faults

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable failure modes.
type Kind string

// Fault kinds.
const (
	// KindLatency delays the request, then serves it normally.
	KindLatency Kind = "latency"
	// KindStatus answers with a synthesized error status (default 503)
	// without reaching the backend.
	KindStatus Kind = "status"
	// KindReset aborts the exchange mid-flight, as a closed TCP
	// connection would: the caller sees a transport error, never a
	// response, and cannot know whether the request was applied.
	KindReset Kind = "reset"
	// KindTimeout holds the request until the caller's context deadline
	// expires (bounded by the rule's LatencyMS cap), then aborts it.
	KindTimeout Kind = "timeout"
	// KindTruncate serves the backend's response with the body cut off
	// mid-document — syntactically broken JSON.
	KindTruncate Kind = "truncate"
	// KindMalformed replaces the backend's response body with
	// well-formed-looking but unparsable JSON.
	KindMalformed Kind = "malformed"
	// KindTokenExpiry answers 401 with a keystone-style authentication
	// error, as an expired service token would.
	KindTokenExpiry Kind = "token-expiry"
)

// valid reports whether the kind is one of the defined fault kinds.
func (k Kind) valid() bool {
	switch k {
	case KindLatency, KindStatus, KindReset, KindTimeout, KindTruncate, KindMalformed, KindTokenExpiry:
		return true
	}
	return false
}

// Rule injects one fault kind into a slice of the traffic.
type Rule struct {
	// Kind selects the failure mode. Required.
	Kind Kind `json:"kind"`
	// Method restricts the rule to one HTTP method ("" = any).
	Method string `json:"method,omitempty"`
	// Path restricts the rule to request paths containing this substring
	// ("" = any).
	Path string `json:"path,omitempty"`
	// Probability fires the rule on each matching request with this
	// chance (0..1), drawn from the profile's seeded RNG.
	Probability float64 `json:"probability,omitempty"`
	// Every fires the rule deterministically on every Nth matching
	// request (1 = every request). When set it overrides Probability.
	Every int `json:"every,omitempty"`
	// Burst extends a firing over this many consecutive matching
	// requests (0 or 1 = a single request), modelling correlated
	// outages such as a 5xx window.
	Burst int `json:"burst,omitempty"`
	// LatencyMS is the injected delay for latency faults and the maximum
	// hang for timeout faults (default DefaultTimeoutCapMS).
	LatencyMS int `json:"latency_ms,omitempty"`
	// JitterMS widens latency faults to LatencyMS + [0, JitterMS].
	JitterMS int `json:"jitter_ms,omitempty"`
	// Status is the synthesized code for status faults (default 503).
	Status int `json:"status,omitempty"`
}

// DefaultTimeoutCapMS bounds a timeout fault when the caller has no
// deadline of its own, so an injected hang cannot wedge a run forever.
const DefaultTimeoutCapMS = 30_000

// matches reports whether the rule applies to the request.
func (r *Rule) matches(method, path string) bool {
	if r.Method != "" && r.Method != method {
		return false
	}
	if r.Path != "" && !contains(path, r.Path) {
		return false
	}
	return true
}

// contains is strings.Contains without the import (kept local so the hot
// decide path stays obviously allocation-free).
func contains(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Profile is a named, reproducible fault schedule.
type Profile struct {
	// Seed drives the probabilistic draws; the same seed over the same
	// request order replays the same fault sequence.
	Seed int64 `json:"seed"`
	// Rules are evaluated in order; the first rule that fires wins.
	Rules []Rule `json:"rules"`
}

// Validate checks the profile's rules.
func (p *Profile) Validate() error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("faults: profile has no rules")
	}
	for i, r := range p.Rules {
		if !r.Kind.valid() {
			return fmt.Errorf("faults: rule %d has unknown kind %q", i, r.Kind)
		}
		if r.Probability < 0 || r.Probability > 1 {
			return fmt.Errorf("faults: rule %d probability %v outside [0,1]", i, r.Probability)
		}
		if r.Probability == 0 && r.Every <= 0 {
			return fmt.Errorf("faults: rule %d fires never (needs probability or every)", i)
		}
		if r.Every < 0 || r.Burst < 0 || r.LatencyMS < 0 || r.JitterMS < 0 {
			return fmt.Errorf("faults: rule %d has a negative knob", i)
		}
		if r.Status != 0 && (r.Status < 400 || r.Status > 599) {
			return fmt.Errorf("faults: rule %d status %d outside 4xx/5xx", i, r.Status)
		}
	}
	return nil
}

// ParseProfile decodes and validates a JSON profile.
func ParseProfile(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parse profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadProfile reads a profile from a JSON file.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: load profile: %w", err)
	}
	return ParseProfile(data)
}

// ruleState is a rule plus its firing bookkeeping.
type ruleState struct {
	rule      Rule
	matched   int // matching requests seen (drives Every)
	burstLeft int // remaining requests of an active burst
}

// decision is one resolved injection: what to do to the current request.
type decision struct {
	kind   Kind
	delay  time.Duration // latency delay, or timeout cap
	status int
}

// Injector applies a profile to traffic. One injector serializes its
// decisions behind a mutex: the RNG draws consume in request order, which
// is what makes a seeded schedule reproducible.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*ruleState
	counts   map[Kind]uint64
	disabled atomic.Bool
}

// NewInjector builds an injector for the profile. The profile must have
// been validated (ParseProfile/LoadProfile do so).
func NewInjector(p *Profile) *Injector {
	in := &Injector{
		rng:    rand.New(rand.NewSource(p.Seed)),
		counts: make(map[Kind]uint64, len(p.Rules)),
	}
	for _, r := range p.Rules {
		in.rules = append(in.rules, &ruleState{rule: r})
	}
	return in
}

// SetEnabled toggles injection; a disabled injector passes all traffic
// through untouched (harnesses use this to warm caches before the chaos
// phase).
func (in *Injector) SetEnabled(v bool) { in.disabled.Store(!v) }

// decide resolves the fault (if any) for one request.
func (in *Injector) decide(method, path string) *decision {
	if in.disabled.Load() {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, st := range in.rules {
		r := &st.rule
		if !r.matches(method, path) {
			continue
		}
		st.matched++
		fire, fresh := false, false
		switch {
		case st.burstLeft > 0:
			st.burstLeft--
			fire = true
		case r.Every > 0:
			fire, fresh = st.matched%r.Every == 0, true
		default:
			fire, fresh = in.rng.Float64() < r.Probability, true
		}
		if !fire {
			continue
		}
		// Only a fresh firing opens a burst window; the window draining to
		// zero must not re-arm itself.
		if fresh && r.Burst > 1 {
			st.burstLeft = r.Burst - 1
		}
		d := &decision{kind: r.Kind}
		switch r.Kind {
		case KindLatency:
			ms := r.LatencyMS
			if r.JitterMS > 0 {
				ms += in.rng.Intn(r.JitterMS + 1)
			}
			d.delay = time.Duration(ms) * time.Millisecond
		case KindTimeout:
			capMS := r.LatencyMS
			if capMS <= 0 {
				capMS = DefaultTimeoutCapMS
			}
			d.delay = time.Duration(capMS) * time.Millisecond
		case KindStatus:
			d.status = r.Status
			if d.status == 0 {
				d.status = 503
			}
		}
		in.counts[r.Kind]++
		return d
	}
	return nil
}

// Counts returns the tally of injected faults per kind since construction.
func (in *Injector) Counts() map[string]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int, len(in.counts))
	for k, n := range in.counts {
		out[string(k)] = int(n)
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, c := range in.counts {
		n += int(c)
	}
	return n
}
