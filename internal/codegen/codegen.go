// Package codegen implements uml2go, the paper's uml2django analogue
// (Section VI): from the design models it generates the file structure of a
// runnable cloud-monitor skeleton. The Django trio maps onto Go files:
//
//	models.py -> resources.go   local mirror structs of the resources
//	urls.py   -> routes.go      the URI table derived from the class diagram
//	views.py  -> handlers.go    per-method handlers embedding the generated
//	                            pre-/post-conditions, the authorization
//	                            guards, and the SecReq traceability
//	                            variables, with TODO gaps for the
//	                            developer's own code
//
// plus contracts.go (the Listing-1 contracts as constants), main.go and
// go.mod, so the output is a self-contained module that compiles with the
// standard library alone.
package codegen

import (
	"bytes"
	"fmt"
	"go/format"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"unicode"

	"cloudmon/internal/analysis"
	"cloudmon/internal/contract"
	"cloudmon/internal/uml"
)

// Options configures generation.
type Options struct {
	// Project is the generated module and package name (the ProjectName
	// argument of `uml2go ProjectName diagrams.xmi`).
	Project string
	// CloudURL is the default backend the generated monitor proxies to.
	CloudURL string
	// Lenient downgrades static-analysis errors from refusal to a
	// warning: generation proceeds even when modelvet reports errors.
	Lenient bool
	// AnalysisLog receives the rendered modelvet report when the model
	// has diagnostics; nil discards it.
	AnalysisLog io.Writer
}

// Result is the generated file set, keyed by file name.
type Result struct {
	Files map[string][]byte
	// Contracts is the generated contract set the files embed.
	Contracts *contract.Set
}

// Generate produces the skeleton from a validated model.
func Generate(m *uml.Model, opts Options) (*Result, error) {
	if opts.Project == "" {
		return nil, fmt.Errorf("codegen: missing project name")
	}
	if !validIdent(opts.Project) {
		return nil, fmt.Errorf("codegen: project name %q is not a valid Go identifier", opts.Project)
	}
	report := analysis.Analyze(m, analysis.Config{})
	if len(report.Diagnostics) > 0 && opts.AnalysisLog != nil {
		fmt.Fprint(opts.AnalysisLog, report.Render())
	}
	if report.HasErrors() && !opts.Lenient {
		return nil, fmt.Errorf("codegen: model rejected by static analysis (%d error(s); run modelvet for details, or pass -lenient to generate anyway):\n%s",
			report.Count(analysis.Error), strings.TrimRight(report.Render(), "\n"))
	}
	set, err := contract.Generate(m)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	cloudURL := opts.CloudURL
	if cloudURL == "" {
		cloudURL = "http://127.0.0.1:8776"
	}
	data := buildTemplateData(m, set, opts.Project, cloudURL)

	files := make(map[string][]byte, 6)
	for name, tmpl := range templates {
		var buf bytes.Buffer
		if err := tmpl.Execute(&buf, data); err != nil {
			return nil, fmt.Errorf("codegen: render %s: %w", name, err)
		}
		out := buf.Bytes()
		if strings.HasSuffix(name, ".go") {
			formatted, err := format.Source(out)
			if err != nil {
				return nil, fmt.Errorf("codegen: format %s: %w (source:\n%s)", name, err, out)
			}
			out = formatted
		}
		files[name] = out
	}
	return &Result{Files: files, Contracts: set}, nil
}

// WriteFiles writes the generated files into dir, creating it if needed.
func WriteFiles(dir string, files map[string][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("codegen: %w", err)
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return fmt.Errorf("codegen: write %s: %w", name, err)
		}
	}
	return nil
}

// templateData is the input to all file templates.
type templateData struct {
	Project   string
	CloudURL  string
	ModelName string
	Resources []resourceData
	Routes    []routeData
	Handlers  []handlerData
	SecReqs   []string
}

type resourceData struct {
	GoName string
	Name   string
	Kind   string
	Fields []fieldData
}

type fieldData struct {
	GoName string
	Name   string
	GoType string
}

type handlerData struct {
	FuncName   string
	Method     string
	Resource   string
	Pattern    string
	Backend    string
	PreConst   string
	PostConst  string
	Pre        string
	Post       string
	StatePaths []string
	SecReqs    []string
	Guards     []string
}

type routeData struct {
	Method   string
	Pattern  string
	FuncName string
}

func buildTemplateData(m *uml.Model, set *contract.Set, project, cloudURL string) templateData {
	data := templateData{
		Project:   project,
		CloudURL:  cloudURL,
		ModelName: m.Resource.Name,
		SecReqs:   set.SecReqs(),
	}
	for _, r := range m.Resource.Resources {
		rd := resourceData{
			GoName: exportName(r.Name),
			Name:   r.Name,
			Kind:   r.Kind.String(),
		}
		for _, a := range r.Attributes {
			rd.Fields = append(rd.Fields, fieldData{
				GoName: exportName(a.Name),
				Name:   a.Name,
				GoType: goType(a.Type),
			})
		}
		data.Resources = append(data.Resources, rd)
	}
	for _, c := range set.Contracts {
		pattern := c.URI
		if c.Trigger.Method == uml.POST {
			if idx := strings.LastIndex(pattern, "/"); idx > 0 {
				pattern = pattern[:idx]
			}
		}
		fn := "handle" + exportName(strings.ToLower(string(c.Trigger.Method))) + exportName(c.Trigger.Resource)
		var guards []string
		for _, cs := range c.Cases {
			guards = append(guards, cs.Transition.Guard)
		}
		hd := handlerData{
			FuncName:   fn,
			Method:     string(c.Trigger.Method),
			Resource:   c.Trigger.Resource,
			Pattern:    pattern,
			Backend:    backendTemplate(pattern),
			PreConst:   "pre" + exportName(strings.ToLower(string(c.Trigger.Method))) + exportName(c.Trigger.Resource),
			PostConst:  "post" + exportName(strings.ToLower(string(c.Trigger.Method))) + exportName(c.Trigger.Resource),
			Pre:        c.Pre.String(),
			Post:       c.Post.String(),
			StatePaths: c.StatePaths(),
			SecReqs:    c.SecReqs,
		}
		hd.Guards = guards
		data.Handlers = append(data.Handlers, hd)
		data.Routes = append(data.Routes, routeData{
			Method:   string(c.Trigger.Method),
			Pattern:  pattern,
			FuncName: fn,
		})
	}
	sort.Slice(data.Routes, func(i, j int) bool {
		if data.Routes[i].Pattern != data.Routes[j].Pattern {
			return data.Routes[i].Pattern < data.Routes[j].Pattern
		}
		return data.Routes[i].Method < data.Routes[j].Method
	})
	return data
}

// backendTemplate maps the model URI to the OpenStack cinder URI, matching
// the deployment the paper monitors.
func backendTemplate(pattern string) string {
	const prefix = "/projects/"
	if !strings.HasPrefix(pattern, prefix) {
		return pattern
	}
	return "/volume/v3/" + pattern[len(prefix):]
}

// exportName converts snake_case to an exported Go identifier.
func exportName(s string) string {
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == '_' || r == '-' })
	var sb strings.Builder
	for _, p := range parts {
		runes := []rune(p)
		runes[0] = unicode.ToUpper(runes[0])
		sb.WriteString(string(runes))
	}
	return sb.String()
}

// validIdent reports whether s can serve as a Go identifier/module name.
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !unicode.IsLetter(r) && r != '_' {
			return false
		}
		if i > 0 && !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return true
}

func goType(t uml.AttrType) string {
	switch t {
	case uml.TypeInteger:
		return "int"
	case uml.TypeBoolean:
		return "bool"
	default:
		return "string"
	}
}
