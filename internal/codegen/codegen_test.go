package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cloudmon/internal/paper"
)

func generatePaper(t *testing.T) *Result {
	t.Helper()
	res, err := Generate(paper.CinderModel(), Options{
		Project:  "cindermon",
		CloudURL: "http://127.0.0.1:8776",
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return res
}

func TestGenerateProducesAllFiles(t *testing.T) {
	res := generatePaper(t)
	for _, name := range []string{"go.mod", "resources.go", "contracts.go", "routes.go", "handlers.go", "main.go"} {
		if _, ok := res.Files[name]; !ok {
			t.Errorf("missing generated file %s", name)
		}
	}
}

func TestGeneratedResourcesMirrorModel(t *testing.T) {
	res := generatePaper(t)
	src := string(res.Files["resources.go"])
	for _, want := range []string{
		"type Volume struct",
		"type QuotaSets struct",
		"type Projects struct",
		"`json:\"status\"`",
		"Volume int `json:\"volume\"`",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("resources.go missing %q", want)
		}
	}
}

func TestGeneratedContractsEmbedOCL(t *testing.T) {
	res := generatePaper(t)
	src := string(res.Files["contracts.go"])
	for _, want := range []string{
		"preDeleteVolume",
		"postDeleteVolume",
		"volume.status <> 'in-use'",
		"user.id.groups = 'admin'",
		"SecReq 1.4",
		`"project.volumes"`,
		`secReqs = []string{"1.1", "1.2", "1.3", "1.4"}`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("contracts.go missing %q", want)
		}
	}
}

func TestGeneratedRoutesUseModelURIs(t *testing.T) {
	res := generatePaper(t)
	src := string(res.Files["routes.go"])
	for _, want := range []string{
		`mux.HandleFunc("DELETE /projects/{project_id}/volumes/{volume_id}", handleDeleteVolume)`,
		`mux.HandleFunc("POST /projects/{project_id}/volumes", handlePostVolume)`,
		`mux.HandleFunc("GET /projects/{project_id}/volumes/{volume_id}", handleGetVolume)`,
		`mux.HandleFunc("PUT /projects/{project_id}/volumes/{volume_id}", handlePutVolume)`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("routes.go missing %q", want)
		}
	}
}

func TestGeneratedHandlersHaveSkeletonMarkers(t *testing.T) {
	res := generatePaper(t)
	src := string(res.Files["handlers.go"])
	for _, want := range []string{
		"func handleDeleteVolume(w http.ResponseWriter, r *http.Request)",
		"TODO: add the desired implementation",
		"checkContract(preDeleteVolume, r)",
		"checkContract(postDeleteVolume, r)",
		"/volume/v3/{project_id}/volumes/{volume_id}",
		"r.PathValue(name)",
		`coveredSecReqs := []string{"1.4"}`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("handlers.go missing %q", want)
		}
	}
}

// TestGeneratedCodeCompiles writes the skeleton to disk and builds it with
// the Go toolchain — the generated module must be self-contained.
func TestGeneratedCodeCompiles(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	res := generatePaper(t)
	dir := t.TempDir()
	if err := WriteFiles(dir, res.Files); err != nil {
		t.Fatalf("WriteFiles: %v", err)
	}
	cmd := exec.Command("go", "build", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated code does not compile: %v\n%s", err, out)
	}
	if err := cmd.Err; err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(paper.CinderModel(), Options{}); err == nil {
		t.Error("missing project name accepted")
	}
	if _, err := Generate(paper.CinderModel(), Options{Project: "9bad"}); err == nil {
		t.Error("invalid identifier accepted")
	}
	if _, err := Generate(paper.CinderModel(), Options{Project: "with space"}); err == nil {
		t.Error("identifier with space accepted")
	}
	bad := paper.CinderModel()
	bad.Behavioral.Transitions[0].Guard = "((("
	if _, err := Generate(bad, Options{Project: "x"}); err == nil {
		t.Error("malformed model accepted")
	}
}

func TestDefaultCloudURL(t *testing.T) {
	res, err := Generate(paper.CinderModel(), Options{Project: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Files["handlers.go"]), "http://127.0.0.1:8776") {
		t.Error("default cloud URL not applied")
	}
}

func TestExportName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"volume", "Volume"},
		{"quota_sets", "QuotaSets"},
		{"usergroup", "Usergroup"},
		{"a_b_c", "ABC"},
		{"with-dash", "WithDash"},
	}
	for _, tt := range tests {
		if got := exportName(tt.in); got != tt.want {
			t.Errorf("exportName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestWriteFilesCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	if err := WriteFiles(dir, map[string][]byte{"a.txt": []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "a.txt"))
	if err != nil || string(data) != "hi" {
		t.Errorf("read back = %q, %v", data, err)
	}
}

func TestGenerateRefusesAnalyzerErrors(t *testing.T) {
	// An unparsable invariant is an MV001 error: strict generation must
	// refuse, lenient generation must proceed and log the report.
	m := paper.CinderModel()
	m.Behavioral.States[0].Invariant = "volumes->size( = 1"
	_, err := Generate(m, Options{Project: "broken"})
	if err == nil || !strings.Contains(err.Error(), "static analysis") {
		t.Fatalf("Generate on broken model: err = %v, want static-analysis refusal", err)
	}
	if !strings.Contains(err.Error(), "MV001") {
		t.Errorf("refusal does not name the diagnostic: %v", err)
	}

	var log strings.Builder
	res, err := Generate(m, Options{Project: "broken", Lenient: true, AnalysisLog: &log})
	if err == nil {
		// Lenient passes the analyzer gate; contract generation itself
		// may still fail on the unparsable OCL, which is acceptable.
		if res == nil {
			t.Fatal("lenient Generate returned nil result and nil error")
		}
	} else if !strings.Contains(err.Error(), "codegen:") {
		t.Fatalf("lenient Generate: unexpected error %v", err)
	}
	if !strings.Contains(log.String(), "MV001") {
		t.Errorf("AnalysisLog did not receive the report:\n%s", log.String())
	}
}
