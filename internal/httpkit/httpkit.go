// Package httpkit provides small HTTP helpers shared by the simulated
// OpenStack services and the cloud monitor: a path-pattern router, JSON
// request/response encoding, and typed API errors that map onto HTTP
// status codes.
//
// The package is intentionally minimal — the paper's monitor interprets
// plain HTTP status codes and JSON bodies, so nothing beyond net/http and
// encoding/json is required.
package httpkit

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// APIError is an error carrying an HTTP status code. Services return it from
// handlers; WriteError maps it onto the response. It supports errors.As.
type APIError struct {
	// Status is the HTTP status code to report (e.g. 403, 404).
	Status int
	// Code is a short machine-readable identifier (e.g. "forbidden").
	Code string
	// Message is the human-readable detail.
	Message string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("%d %s: %s", e.Status, e.Code, e.Message)
}

// Errorf builds an APIError with a formatted message.
func Errorf(status int, code, format string, args ...any) *APIError {
	return &APIError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// Common constructors for the status codes the paper's workflow interprets.
var (
	// ErrNotFound is a sentinel for 404 lookups inside services.
	ErrNotFound = errors.New("not found")
)

// NotFound builds a 404 APIError.
func NotFound(format string, args ...any) *APIError {
	return Errorf(http.StatusNotFound, "not_found", format, args...)
}

// Forbidden builds a 403 APIError.
func Forbidden(format string, args ...any) *APIError {
	return Errorf(http.StatusForbidden, "forbidden", format, args...)
}

// Unauthorized builds a 401 APIError.
func Unauthorized(format string, args ...any) *APIError {
	return Errorf(http.StatusUnauthorized, "unauthorized", format, args...)
}

// BadRequest builds a 400 APIError.
func BadRequest(format string, args ...any) *APIError {
	return Errorf(http.StatusBadRequest, "bad_request", format, args...)
}

// Conflict builds a 409 APIError.
func Conflict(format string, args ...any) *APIError {
	return Errorf(http.StatusConflict, "conflict", format, args...)
}

// OverLimit builds a 413 APIError (OpenStack's historical quota-exceeded code).
func OverLimit(format string, args ...any) *APIError {
	return Errorf(http.StatusRequestEntityTooLarge, "over_limit", format, args...)
}

// errorBody is the JSON envelope for errors, shaped after OpenStack's
// {"error": {"code": ..., "title": ..., "message": ...}} convention.
type errorBody struct {
	Error struct {
		Code    int    `json:"code"`
		Title   string `json:"title"`
		Message string `json:"message"`
	} `json:"error"`
}

// WriteJSON encodes v as JSON with the given status code.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if v == nil {
		return
	}
	enc := json.NewEncoder(w)
	// Encoding errors after WriteHeader cannot be reported to the client;
	// they surface as a truncated body, which clients treat as a failure.
	_ = enc.Encode(v)
}

// WriteError maps err onto an HTTP error response. *APIError values keep
// their status; anything else becomes a 500.
func WriteError(w http.ResponseWriter, err error) {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		apiErr = Errorf(http.StatusInternalServerError, "internal", "%v", err)
	}
	var body errorBody
	body.Error.Code = apiErr.Status
	body.Error.Title = apiErr.Code
	body.Error.Message = apiErr.Message
	WriteJSON(w, apiErr.Status, body)
}

// ReadJSON decodes the request body into v, returning a BadRequest APIError
// on malformed input.
func ReadJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return BadRequest("read body: %v", err)
	}
	if len(body) == 0 {
		return BadRequest("empty body")
	}
	if err := json.Unmarshal(body, v); err != nil {
		return BadRequest("decode body: %v", err)
	}
	return nil
}

// HandlerFunc is a handler that can fail; the router converts errors into
// HTTP error responses.
type HandlerFunc func(w http.ResponseWriter, r *http.Request, params map[string]string) error

// route is one registered pattern.
type route struct {
	method   string
	segments []string // literal or "{name}" capture
	handler  HandlerFunc
}

// Router dispatches requests on (method, path pattern) pairs. Patterns use
// `{name}` segments for captures, e.g. `/v3/{project_id}/volumes/{volume_id}`.
// The zero value is ready to use.
type Router struct {
	routes []route
	// NotFoundHandler, if set, is invoked when no pattern matches.
	NotFoundHandler http.Handler
}

var _ http.Handler = (*Router)(nil)

// Handle registers handler for the method and pattern.
func (rt *Router) Handle(method, pattern string, handler HandlerFunc) {
	rt.routes = append(rt.routes, route{
		method:   method,
		segments: splitPath(pattern),
		handler:  handler,
	})
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	segs := splitPath(r.URL.Path)
	methodSeen := false
	for _, rte := range rt.routes {
		params, ok := matchSegments(rte.segments, segs)
		if !ok {
			continue
		}
		if rte.method != r.Method {
			methodSeen = true
			continue
		}
		if err := rte.handler(w, r, params); err != nil {
			WriteError(w, err)
		}
		return
	}
	if methodSeen {
		WriteError(w, Errorf(http.StatusMethodNotAllowed, "method_not_allowed",
			"method %s not allowed on %s", r.Method, r.URL.Path))
		return
	}
	if rt.NotFoundHandler != nil {
		rt.NotFoundHandler.ServeHTTP(w, r)
		return
	}
	WriteError(w, NotFound("no route for %s %s", r.Method, r.URL.Path))
}

// splitPath splits a URL path into non-empty segments.
func splitPath(p string) []string {
	parts := strings.Split(strings.Trim(p, "/"), "/")
	if len(parts) == 1 && parts[0] == "" {
		return nil
	}
	return parts
}

// matchSegments matches concrete path segments against a pattern, returning
// captured `{name}` parameters.
func matchSegments(pattern, segs []string) (map[string]string, bool) {
	if len(pattern) != len(segs) {
		return nil, false
	}
	var params map[string]string
	for i, p := range pattern {
		if strings.HasPrefix(p, "{") && strings.HasSuffix(p, "}") {
			if params == nil {
				params = make(map[string]string, 2)
			}
			params[p[1:len(p)-1]] = segs[i]
			continue
		}
		if p != segs[i] {
			return nil, false
		}
	}
	return params, true
}
