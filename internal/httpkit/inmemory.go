package httpkit

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// HandlerClient returns an *http.Client whose requests are served directly
// by h, in process, without opening sockets. The mutation lab and the
// benchmarks use it to wire monitor -> cloud without network overhead; the
// same handlers can still be mounted on a real listener.
func HandlerClient(h http.Handler) *http.Client {
	return &http.Client{Transport: handlerTransport{h: h}}
}

// handlerTransport serves round-trips straight through an http.Handler.
type handlerTransport struct {
	h http.Handler
}

var _ http.RoundTripper = handlerTransport{}

// RoundTrip implements http.RoundTripper.
func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := newRecorder()
	// Handlers may expect a non-nil body.
	if req.Body == nil {
		req.Body = io.NopCloser(bytes.NewReader(nil))
	}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.status, http.StatusText(rec.status)),
		StatusCode:    rec.status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// recorder is a minimal in-memory http.ResponseWriter.
type recorder struct {
	header http.Header
	body   bytes.Buffer
	status int
	wrote  bool
}

var _ http.ResponseWriter = (*recorder)(nil)

func newRecorder() *recorder {
	return &recorder{header: make(http.Header), status: http.StatusOK}
}

// Header implements http.ResponseWriter.
func (r *recorder) Header() http.Header { return r.header }

// WriteHeader implements http.ResponseWriter.
func (r *recorder) WriteHeader(status int) {
	if r.wrote {
		return
	}
	r.wrote = true
	r.status = status
}

// Write implements http.ResponseWriter.
func (r *recorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.body.Write(p)
}
