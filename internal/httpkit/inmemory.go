package httpkit

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// DefaultCloudTimeout is the single knob every cloud-facing HTTP path
// derives its default deadline from: the snapshot client (osclient) and
// the monitor's backend forwarder both bound a request to this unless
// configured otherwise, so "how long may a hung cloud stall us" has one
// answer instead of two drifting ones.
const DefaultCloudTimeout = 15 * time.Second

// ErrAborted is returned by the in-process transport when the handler
// aborted the exchange (http.ErrAbortHandler) — the in-memory equivalent
// of the server closing the TCP connection mid-response.
var ErrAborted = errors.New("httpkit: handler aborted connection")

// HandlerClient returns an *http.Client whose requests are served directly
// by h, in process, without opening sockets. The mutation lab and the
// benchmarks use it to wire monitor -> cloud without network overhead; the
// same handlers can still be mounted on a real listener.
func HandlerClient(h http.Handler) *http.Client {
	return &http.Client{Transport: handlerTransport{h: h}}
}

// HandlerRoundTripper exposes the in-process transport directly, so
// callers can compose it with other RoundTripper middleware (the fault
// injector wraps it to perturb monitor->cloud traffic without sockets).
func HandlerRoundTripper(h http.Handler) http.RoundTripper {
	return handlerTransport{h: h}
}

// handlerTransport serves round-trips straight through an http.Handler.
type handlerTransport struct {
	h http.Handler
}

var _ http.RoundTripper = handlerTransport{}

// RoundTrip implements http.RoundTripper. Requests carrying a cancelable
// context are served on a goroutine so deadlines interrupt the exchange
// exactly as they would a socket read; background-context requests take
// the synchronous fast path (no goroutine hop on the benchmark-hot loop).
func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Handlers may expect a non-nil body.
	if req.Body == nil {
		req.Body = io.NopCloser(bytes.NewReader(nil))
	}
	if req.Context().Done() == nil {
		return t.serve(req)
	}
	type result struct {
		resp *http.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := t.serve(req)
		ch <- result{resp, err}
	}()
	select {
	case <-req.Context().Done():
		return nil, req.Context().Err()
	case r := <-ch:
		return r.resp, r.err
	}
}

// serve runs the handler to completion, converting panics into transport
// errors the way net/http's server converts them into closed connections.
func (t handlerTransport) serve(req *http.Request) (resp *http.Response, err error) {
	defer func() {
		if p := recover(); p != nil {
			if p == http.ErrAbortHandler {
				err = ErrAborted
				return
			}
			err = fmt.Errorf("httpkit: handler panic: %v", p)
		}
	}()
	rec := newRecorder()
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.status, http.StatusText(rec.status)),
		StatusCode:    rec.status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// recorder is a minimal in-memory http.ResponseWriter.
type recorder struct {
	header http.Header
	body   bytes.Buffer
	status int
	wrote  bool
}

var _ http.ResponseWriter = (*recorder)(nil)

func newRecorder() *recorder {
	return &recorder{header: make(http.Header), status: http.StatusOK}
}

// Header implements http.ResponseWriter.
func (r *recorder) Header() http.Header { return r.header }

// WriteHeader implements http.ResponseWriter.
func (r *recorder) WriteHeader(status int) {
	if r.wrote {
		return
	}
	r.wrote = true
	r.status = status
}

// Write implements http.ResponseWriter.
func (r *recorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.body.Write(p)
}
