package httpkit

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAPIErrorConstructors(t *testing.T) {
	tests := []struct {
		err    *APIError
		status int
		code   string
	}{
		{NotFound("x %d", 1), 404, "not_found"},
		{Forbidden("x"), 403, "forbidden"},
		{Unauthorized("x"), 401, "unauthorized"},
		{BadRequest("x"), 400, "bad_request"},
		{Conflict("x"), 409, "conflict"},
		{OverLimit("x"), 413, "over_limit"},
	}
	for _, tt := range tests {
		if tt.err.Status != tt.status || tt.err.Code != tt.code {
			t.Errorf("%v: status=%d code=%q", tt.err, tt.err.Status, tt.err.Code)
		}
		if !strings.Contains(tt.err.Error(), tt.code) {
			t.Errorf("Error() = %q missing code", tt.err.Error())
		}
	}
}

func TestWriteErrorShapesBody(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, Forbidden("nope"))
	if rec.Code != 403 {
		t.Errorf("status = %d", rec.Code)
	}
	var body struct {
		Error struct {
			Code    int    `json:"code"`
			Title   string `json:"title"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != 403 || body.Error.Title != "forbidden" || body.Error.Message != "nope" {
		t.Errorf("body = %+v", body)
	}
}

func TestWriteErrorWrapsPlainErrors(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, errors.New("boom"))
	if rec.Code != 500 {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestWriteErrorUnwrapsWrappedAPIError(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, fmt.Errorf("context: %w", NotFound("gone")))
	if rec.Code != 404 {
		t.Errorf("status = %d, want 404 from wrapped APIError", rec.Code)
	}
}

func TestReadJSON(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(`{"a":1}`))
	var v struct {
		A int `json:"a"`
	}
	if err := ReadJSON(req, &v); err != nil || v.A != 1 {
		t.Errorf("ReadJSON = %v, v=%+v", err, v)
	}
	for name, body := range map[string]string{
		"empty":     "",
		"malformed": "{",
	} {
		req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(body))
		var out map[string]any
		err := ReadJSON(req, &out)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 400 {
			t.Errorf("%s: err = %v, want 400 APIError", name, err)
		}
	}
}

func routerUnderTest() *Router {
	rt := &Router{}
	rt.Handle(http.MethodGet, "/v3/{project_id}/volumes", func(w http.ResponseWriter, r *http.Request, params map[string]string) error {
		WriteJSON(w, 200, map[string]string{"project": params["project_id"]})
		return nil
	})
	rt.Handle(http.MethodGet, "/v3/{project_id}/volumes/{volume_id}", func(w http.ResponseWriter, r *http.Request, params map[string]string) error {
		WriteJSON(w, 200, params)
		return nil
	})
	rt.Handle(http.MethodDelete, "/v3/{project_id}/volumes/{volume_id}", func(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
		w.WriteHeader(204)
		return nil
	})
	rt.Handle(http.MethodGet, "/boom", func(http.ResponseWriter, *http.Request, map[string]string) error {
		return Forbidden("no entry")
	})
	return rt
}

func TestRouterDispatch(t *testing.T) {
	rt := routerUnderTest()
	tests := []struct {
		method, path string
		want         int
	}{
		{"GET", "/v3/p1/volumes", 200},
		{"GET", "/v3/p1/volumes/v9", 200},
		{"DELETE", "/v3/p1/volumes/v9", 204},
		{"GET", "/nope", 404},
		{"GET", "/v3/p1", 404},
		{"GET", "/v3/p1/volumes/v9/extra", 404},
		{"POST", "/v3/p1/volumes/v9", 405},
		{"GET", "/boom", 403},
	}
	for _, tt := range tests {
		req := httptest.NewRequest(tt.method, tt.path, nil)
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, req)
		if rec.Code != tt.want {
			t.Errorf("%s %s = %d, want %d", tt.method, tt.path, rec.Code, tt.want)
		}
	}
}

func TestRouterCaptures(t *testing.T) {
	rt := routerUnderTest()
	req := httptest.NewRequest("GET", "/v3/proj-7/volumes/vol-3", nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	var params map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &params); err != nil {
		t.Fatal(err)
	}
	if params["project_id"] != "proj-7" || params["volume_id"] != "vol-3" {
		t.Errorf("params = %v", params)
	}
}

func TestRouterNotFoundHandler(t *testing.T) {
	rt := routerUnderTest()
	rt.NotFoundHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(418)
	})
	req := httptest.NewRequest("GET", "/nowhere", nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != 418 {
		t.Errorf("custom not-found = %d", rec.Code)
	}
}

func TestHandlerClientRoundTrip(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/echo" {
			data, _ := io.ReadAll(r.Body)
			w.Header().Set("X-Test", "yes")
			w.WriteHeader(201)
			_, _ = w.Write(data)
			return
		}
		w.WriteHeader(404)
	})
	client := HandlerClient(h)
	resp, err := client.Post("http://in.memory/echo", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Test") != "yes" {
		t.Error("header lost")
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello" {
		t.Errorf("body = %q", body)
	}
	// GET without body.
	resp2, err := client.Get("http://in.memory/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("status = %d", resp2.StatusCode)
	}
}

func TestRecorderDefaultsTo200(t *testing.T) {
	client := HandlerClient(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("implicit ok"))
	}))
	resp, err := client.Get("http://in.memory/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestRecorderIgnoresSecondWriteHeader(t *testing.T) {
	client := HandlerClient(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(201)
		w.WriteHeader(500) // must be ignored
	}))
	resp, err := client.Get("http://in.memory/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Errorf("status = %d, want first WriteHeader to win", resp.StatusCode)
	}
}

func TestWriteJSONNilBody(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, 204, nil)
	if rec.Code != 204 || rec.Body.Len() != 0 {
		t.Errorf("code=%d body=%q", rec.Code, rec.Body.String())
	}
}
