package xmi

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cloudmon/internal/paper"
)

// TestGoldenCinderXMI pins the on-disk XMI format: the checked-in
// testdata/cinder.xmi must decode to the paper's model and re-encode
// byte-identically. If the format changes intentionally, regenerate with
//
//	go run ./cmd/uml2go -emit-example internal/xmi/testdata/cinder.xmi
func TestGoldenCinderXMI(t *testing.T) {
	golden := filepath.Join("testdata", "cinder.xmi")
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	m, err := Decode(data)
	if err != nil {
		t.Fatalf("decode golden file: %v", err)
	}
	want := paper.CinderModel()
	if !reflect.DeepEqual(m.Resource, want.Resource) {
		t.Error("golden resource model drifted from paper fixture")
	}
	if !reflect.DeepEqual(m.Behavioral, want.Behavioral) {
		t.Error("golden behavioral model drifted from paper fixture")
	}
	reencoded, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reencoded, data) {
		t.Error("golden file is not byte-stable under decode/encode; " +
			"regenerate with: go run ./cmd/uml2go -emit-example internal/xmi/testdata/cinder.xmi")
	}
}
