// Package xmi imports and exports design models as XMI documents — the
// interchange step of the paper's toolchain ("We generate XML Metadata
// Interchange (XMI) of the behavioral model from [MagicDraw] and save it
// into a file. The XMI files are given as the input to CM", Section VI).
//
// The vocabulary is a simplified, namespace-free rendering of the XMI 2.1
// content the paper's tool consumes: classes with kinds and typed
// attributes, associations with role names and multiplicities, and a
// protocol state machine whose states carry OCL invariants and whose
// transitions carry triggers, guards, effects and SecReq comments.
// Documents written by Encode round-trip through Decode losslessly.
package xmi

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cloudmon/internal/uml"
)

// Version is the XMI dialect version this package reads and writes.
const Version = "2.1"

// exporterName identifies documents produced by this tool.
const exporterName = "cloudmon uml2go"

// Document is the root XMI element.
type Document struct {
	XMLName  xml.Name  `xml:"XMI"`
	Version  string    `xml:"version,attr"`
	Exporter string    `xml:"exporter,attr,omitempty"`
	Model    ModelElem `xml:"Model"`
}

// ModelElem is the UML model: the class diagram content plus one state
// machine.
type ModelElem struct {
	Name         string            `xml:"name,attr"`
	Classes      []ClassElem       `xml:"Class"`
	Associations []AssociationElem `xml:"Association"`
	StateMachine *StateMachineElem `xml:"StateMachine"`
}

// ClassElem is a resource definition.
type ClassElem struct {
	Name       string          `xml:"name,attr"`
	Kind       string          `xml:"kind,attr"`
	Attributes []AttributeElem `xml:"Attribute"`
}

// AttributeElem is a typed public attribute.
type AttributeElem struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

// AssociationElem is a directed association with a role name and the
// multiplicity of the target end ("*" denotes unbounded).
type AssociationElem struct {
	From  string `xml:"from,attr"`
	To    string `xml:"to,attr"`
	Role  string `xml:"role,attr"`
	Lower string `xml:"lower,attr"`
	Upper string `xml:"upper,attr"`
}

// StateMachineElem is the behavioral model.
type StateMachineElem struct {
	Name        string           `xml:"name,attr"`
	States      []StateElem      `xml:"State"`
	Transitions []TransitionElem `xml:"Transition"`
}

// StateElem is a state with its OCL invariant.
type StateElem struct {
	Name      string `xml:"name,attr"`
	Initial   bool   `xml:"initial,attr,omitempty"`
	Invariant string `xml:"Invariant,omitempty"`
}

// TransitionElem is a transition with trigger, guard, effect and comments.
type TransitionElem struct {
	From     string   `xml:"from,attr"`
	To       string   `xml:"to,attr"`
	Method   string   `xml:"method,attr"`
	Resource string   `xml:"resource,attr"`
	Guard    string   `xml:"Guard,omitempty"`
	Effect   string   `xml:"Effect,omitempty"`
	Comments []string `xml:"Comment"`
}

// secReqPrefix is how security requirements appear in model comments
// (Section IV.C: "each method should be labeled with a corresponding
// security requirement represented as a comment").
const secReqPrefix = "SecReq"

// Encode serializes the model as an XMI document.
func Encode(m *uml.Model) ([]byte, error) {
	if m == nil || m.Resource == nil || m.Behavioral == nil {
		return nil, fmt.Errorf("xmi: model must have both diagrams")
	}
	doc := Document{
		Version:  Version,
		Exporter: exporterName,
		Model: ModelElem{
			Name: m.Resource.Name,
		},
	}
	for _, r := range m.Resource.Resources {
		ce := ClassElem{Name: r.Name, Kind: r.Kind.String()}
		for _, a := range r.Attributes {
			ce.Attributes = append(ce.Attributes, AttributeElem{Name: a.Name, Type: string(a.Type)})
		}
		doc.Model.Classes = append(doc.Model.Classes, ce)
	}
	for _, a := range m.Resource.Associations {
		upper := "*"
		if a.Mult.Max != uml.Many {
			upper = strconv.Itoa(a.Mult.Max)
		}
		doc.Model.Associations = append(doc.Model.Associations, AssociationElem{
			From: a.From, To: a.To, Role: a.Role,
			Lower: strconv.Itoa(a.Mult.Min), Upper: upper,
		})
	}
	sm := &StateMachineElem{Name: m.Behavioral.Name}
	for _, s := range m.Behavioral.States {
		sm.States = append(sm.States, StateElem{
			Name: s.Name, Initial: s.Initial, Invariant: s.Invariant,
		})
	}
	for _, t := range m.Behavioral.Transitions {
		te := TransitionElem{
			From: t.From, To: t.To,
			Method:   string(t.Trigger.Method),
			Resource: t.Trigger.Resource,
			Guard:    t.Guard,
			Effect:   t.Effect,
		}
		for _, s := range t.SecReqs {
			te.Comments = append(te.Comments, secReqPrefix+" "+s)
		}
		sm.Transitions = append(sm.Transitions, te)
	}
	doc.Model.StateMachine = sm

	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, fmt.Errorf("xmi: encode: %w", err)
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// Decode parses an XMI document into a validated model.
func Decode(data []byte) (*uml.Model, error) {
	var doc Document
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("xmi: parse: %w", err)
	}
	if doc.Version != "" && doc.Version != Version {
		return nil, fmt.Errorf("xmi: unsupported version %q (want %s)", doc.Version, Version)
	}
	if doc.Model.StateMachine == nil {
		return nil, fmt.Errorf("xmi: document has no StateMachine element")
	}

	rm := &uml.ResourceModel{Name: doc.Model.Name}
	for _, ce := range doc.Model.Classes {
		kind, err := parseKind(ce.Kind)
		if err != nil {
			return nil, fmt.Errorf("xmi: class %q: %w", ce.Name, err)
		}
		rd := &uml.ResourceDef{Name: ce.Name, Kind: kind}
		for _, ae := range ce.Attributes {
			rd.Attributes = append(rd.Attributes, uml.Attribute{
				Name: ae.Name, Type: uml.AttrType(ae.Type),
			})
		}
		rm.Resources = append(rm.Resources, rd)
	}
	for _, ae := range doc.Model.Associations {
		mult, err := parseMultiplicity(ae.Lower, ae.Upper)
		if err != nil {
			return nil, fmt.Errorf("xmi: association %s->%s: %w", ae.From, ae.To, err)
		}
		rm.Associations = append(rm.Associations, uml.Association{
			From: ae.From, To: ae.To, Role: ae.Role, Mult: mult,
		})
	}

	bm := &uml.BehavioralModel{Name: doc.Model.StateMachine.Name}
	for _, se := range doc.Model.StateMachine.States {
		bm.States = append(bm.States, &uml.State{
			Name:      se.Name,
			Initial:   se.Initial,
			Invariant: strings.TrimSpace(se.Invariant),
		})
	}
	for _, te := range doc.Model.StateMachine.Transitions {
		tr := &uml.Transition{
			From: te.From, To: te.To,
			Trigger: uml.Trigger{
				Method:   uml.HTTPMethod(te.Method),
				Resource: te.Resource,
			},
			Guard:  strings.TrimSpace(te.Guard),
			Effect: strings.TrimSpace(te.Effect),
		}
		for _, c := range te.Comments {
			if tag, ok := parseSecReqComment(c); ok {
				tr.SecReqs = append(tr.SecReqs, tag)
			}
		}
		bm.Transitions = append(bm.Transitions, tr)
	}

	m := &uml.Model{Resource: rm, Behavioral: bm}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("xmi: invalid model: %w", err)
	}
	return m, nil
}

// parseSecReqComment extracts the requirement tag from a "SecReq <tag>"
// comment; other comments are ignored.
func parseSecReqComment(c string) (string, bool) {
	c = strings.TrimSpace(c)
	if !strings.HasPrefix(c, secReqPrefix) {
		return "", false
	}
	tag := strings.TrimSpace(strings.TrimPrefix(c, secReqPrefix))
	if tag == "" {
		return "", false
	}
	return tag, true
}

func parseKind(s string) (uml.ResourceKind, error) {
	switch s {
	case "normal":
		return uml.KindNormal, nil
	case "collection":
		return uml.KindCollection, nil
	default:
		return 0, fmt.Errorf("unknown kind %q", s)
	}
}

func parseMultiplicity(lower, upper string) (uml.Multiplicity, error) {
	min, err := strconv.Atoi(lower)
	if err != nil {
		return uml.Multiplicity{}, fmt.Errorf("bad lower bound %q", lower)
	}
	if upper == "*" {
		return uml.Multiplicity{Min: min, Max: uml.Many}, nil
	}
	max, err := strconv.Atoi(upper)
	if err != nil {
		return uml.Multiplicity{}, fmt.Errorf("bad upper bound %q", upper)
	}
	return uml.Multiplicity{Min: min, Max: max}, nil
}

// ReadFile loads and decodes a model from an XMI file.
func ReadFile(path string) (*uml.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("xmi: %w", err)
	}
	return Decode(data)
}

// WriteFile encodes and writes the model to path.
func WriteFile(path string, m *uml.Model) error {
	data, err := Encode(m)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("xmi: %w", err)
	}
	return nil
}
