package xmi

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

func TestRoundTripPaperModel(t *testing.T) {
	m := paper.CinderModel()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got.Resource, m.Resource) {
		t.Errorf("resource model did not round-trip:\n got %+v\nwant %+v", got.Resource, m.Resource)
	}
	if !reflect.DeepEqual(got.Behavioral, m.Behavioral) {
		t.Errorf("behavioral model did not round-trip")
		for i := range m.Behavioral.Transitions {
			if !reflect.DeepEqual(got.Behavioral.Transitions[i], m.Behavioral.Transitions[i]) {
				t.Errorf("transition %d:\n got %+v\nwant %+v",
					i, got.Behavioral.Transitions[i], m.Behavioral.Transitions[i])
			}
		}
	}
}

func TestEncodeContainsExpectedVocabulary(t *testing.T) {
	data, err := Encode(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		`<XMI version="2.1"`,
		`<Class name="volume" kind="normal">`,
		`<Attribute name="status" type="String">`,
		`<Association from="volumes" to="volume" role="volume" lower="0" upper="*">`,
		`<StateMachine name="cinder_project">`,
		`<State name="project_with_no_volume" initial="true">`,
		`<Comment>SecReq 1.4</Comment>`,
		`<Guard>`,
		`<Effect>`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("encoded XMI missing %q", want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"not xml", "this is not xml"},
		{"wrong version", `<XMI version="9.9"><Model name="m"><StateMachine name="s"/></Model></XMI>`},
		{"no state machine", `<XMI version="2.1"><Model name="m"/></XMI>`},
		{"bad kind", `<XMI version="2.1"><Model name="m">
			<Class name="c" kind="weird"/>
			<StateMachine name="s"><State name="a" initial="true"/></StateMachine></Model></XMI>`},
		{"bad lower bound", `<XMI version="2.1"><Model name="m">
			<Class name="a" kind="collection"/><Class name="b" kind="collection"/>
			<Association from="a" to="b" role="r" lower="x" upper="*"/>
			<StateMachine name="s"><State name="q" initial="true"/></StateMachine></Model></XMI>`},
		{"bad upper bound", `<XMI version="2.1"><Model name="m">
			<Class name="a" kind="collection"/><Class name="b" kind="collection"/>
			<Association from="a" to="b" role="r" lower="0" upper="x"/>
			<StateMachine name="s"><State name="q" initial="true"/></StateMachine></Model></XMI>`},
		{"invalid model semantics", `<XMI version="2.1"><Model name="m">
			<Class name="c" kind="normal"/>
			<StateMachine name="s"><State name="a" initial="true"/></StateMachine></Model></XMI>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode([]byte(tt.doc)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestDecodeMinimalDocument(t *testing.T) {
	doc := `<XMI version="2.1">
	  <Model name="tiny">
	    <Class name="things" kind="collection"/>
	    <Class name="thing" kind="normal">
	      <Attribute name="id" type="String"/>
	    </Class>
	    <Association from="things" to="thing" role="thing" lower="0" upper="*"/>
	    <StateMachine name="tiny_sm">
	      <State name="start" initial="true">
	        <Invariant>thing.id->size()=0</Invariant>
	      </State>
	      <State name="made">
	        <Invariant>thing.id->size()=1</Invariant>
	      </State>
	      <Transition from="start" to="made" method="POST" resource="thing">
	        <Guard>user.id.groups='admin'</Guard>
	        <Effect>thing.id->size() = 1</Effect>
	        <Comment>SecReq 2.1</Comment>
	        <Comment>free-form note, ignored</Comment>
	      </Transition>
	    </StateMachine>
	  </Model>
	</XMI>`
	m, err := Decode([]byte(doc))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if m.Resource.Name != "tiny" || len(m.Resource.Resources) != 2 {
		t.Errorf("resource model = %+v", m.Resource)
	}
	tr := m.Behavioral.Transitions[0]
	if tr.Guard != "user.id.groups='admin'" {
		t.Errorf("guard = %q", tr.Guard)
	}
	if len(tr.SecReqs) != 1 || tr.SecReqs[0] != "2.1" {
		t.Errorf("SecReqs = %v (free-form comments must be ignored)", tr.SecReqs)
	}
	if st, ok := m.Behavioral.InitialState(); !ok || st.Name != "start" {
		t.Errorf("initial state = %v, %v", st, ok)
	}
}

func TestEncodeRejectsPartialModels(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Encode(&uml.Model{Resource: paper.CinderResourceModel()}); err == nil {
		t.Error("model without behavioral diagram accepted")
	}
}

func TestReadWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cinder.xmi")
	if err := WriteFile(path, paper.CinderModel()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	m, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if m.Resource.Name != "cinder" {
		t.Errorf("model name = %q", m.Resource.Name)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.xmi")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseSecReqComment(t *testing.T) {
	tests := []struct {
		in   string
		want string
		ok   bool
	}{
		{"SecReq 1.4", "1.4", true},
		{"  SecReq 1.4  ", "1.4", true},
		{"SecReq", "", false},
		{"note about design", "", false},
		{"", "", false},
	}
	for _, tt := range tests {
		got, ok := parseSecReqComment(tt.in)
		if got != tt.want || ok != tt.ok {
			t.Errorf("parseSecReqComment(%q) = %q,%v; want %q,%v", tt.in, got, ok, tt.want, tt.ok)
		}
	}
}
