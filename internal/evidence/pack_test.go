package evidence

import (
	"crypto/ed25519"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudmon/internal/obs"
)

// testKey derives a deterministic Ed25519 key so pack bytes are stable
// across test runs.
func testKey(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := GenerateKey(strings.NewReader(strings.Repeat("deterministic-seed!!", 4)))
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

// writeTrail builds a small audit trail (Append stamps the schema).
func writeTrail(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	log, err := obs.OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range []*obs.AuditRecord{
		{Trigger: "DELETE(volume)", Method: "DELETE", Resource: "volume",
			Outcome: "blocked", SecReqs: []string{"1.4"},
			ContractDigest: "sha256:aaaa", Pre: map[string]string{"volume.status": "'available'"}},
		{Trigger: "GET(volume)", Method: "GET", Resource: "volume",
			Outcome: "rejected", SecReqs: []string{"1.1"},
			ContractDigest: "sha256:bbbb", BackendStatus: 403},
	} {
		rec.Time = int64(1000 + i)
		log.Append(rec)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func buildTestPack(t *testing.T, out string, priv ed25519.PrivateKey) *BuildResult {
	t.Helper()
	res, err := BuildPack(writeTrail(t), out, PackOptions{
		Key:             priv,
		Scenario:        "test-scenario",
		SetDigest:       "sha256:set",
		Tool:            "pack_test",
		CreatedUnixNano: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPackRoundTripDirAndZip(t *testing.T) {
	pub, priv := testKey(t)
	for _, name := range []string{"pack", "pack.zip"} {
		out := filepath.Join(t.TempDir(), name)
		res := buildTestPack(t, out, priv)
		if res.Records != 2 || res.Segments != 1 {
			t.Fatalf("%s: build result %+v", name, res)
		}
		p, err := OpenPack(out)
		if err != nil {
			t.Fatal(err)
		}
		if p.Meta.Scenario != "test-scenario" || p.Meta.SetDigest != "sha256:set" {
			t.Errorf("%s: meta %+v", name, p.Meta)
		}
		if p.Meta.ContractDigests["GET(volume)"] != "sha256:bbbb" {
			t.Errorf("%s: contract digests %v", name, p.Meta.ContractDigests)
		}
		rep, err := p.Verify(pub)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() || rep.SignedByEmbedded {
			t.Errorf("%s: verify with the real key: %+v", name, rep)
		}
		// A pack is self-verifying for integrity: no key supplied, the
		// embedded one is used and the report says so.
		rep, err = p.Verify(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() || !rep.SignedByEmbedded {
			t.Errorf("%s: verify with the embedded key: %+v", name, rep)
		}
		recs, err := p.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs.Records) != 2 || recs.Records[0].Outcome != "blocked" {
			t.Errorf("%s: packed records %+v", name, recs.Records)
		}
		p.Close()
	}
}

// TestPackDeterministicZip: same trail, same key, same pinned timestamp
// → byte-identical zips (fixed entry order, zero zip timestamps, Store).
func TestPackDeterministicZip(t *testing.T) {
	_, priv := testKey(t)
	trail := writeTrail(t)
	build := func(out string) []byte {
		t.Helper()
		if _, err := BuildPack(trail, out, PackOptions{Key: priv, CreatedUnixNano: 42}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := build(filepath.Join(t.TempDir(), "a.zip"))
	b := build(filepath.Join(t.TempDir(), "b.zip"))
	if string(a) != string(b) {
		t.Error("two packs of the same trail differ byte-for-byte")
	}
}

func TestPackTamperOneByte(t *testing.T) {
	_, priv := testKey(t)
	out := filepath.Join(t.TempDir(), "pack")
	buildTestPack(t, out, priv)
	seg := filepath.Join(out, "segments", "audit-000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPack(out)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rep, err := p.Verify(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PackOK() {
		t.Fatal("flipped byte not detected")
	}
	found := false
	for _, prob := range rep.Problems {
		if strings.Contains(prob, "manifest mismatch") && strings.Contains(prob, "segments/audit-000001.jsonl") {
			found = true
		}
	}
	if !found {
		t.Errorf("no pointed manifest-mismatch problem, got %v", rep.Problems)
	}
}

func TestPackSignatureTampering(t *testing.T) {
	pub, priv := testKey(t)
	out := filepath.Join(t.TempDir(), "pack")
	buildTestPack(t, out, priv)

	// Re-sign the manifest with a different key: the embedded-key check
	// still passes (the pack is internally consistent) but verification
	// against the real public key must fail and flag the key swap.
	otherPub, otherPriv, err := GenerateKey(strings.NewReader(strings.Repeat("a different seed 1234", 4)))
	if err != nil {
		t.Fatal(err)
	}
	_ = otherPub
	manifest, err := os.ReadFile(filepath.Join(out, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	forged := Signature{
		SchemaID:      SignatureSchemaID,
		SchemaVersion: PackSchemaVersion,
		Algorithm:     "ed25519",
		KeyID:         KeyID(otherPub),
		PublicKey:     "",
		Signature:     "",
	}
	forged.PublicKey = hexOf(otherPub)
	forged.Signature = hexOf(ed25519.Sign(otherPriv, manifest))
	data, err := Marshal(forged)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(out, SignatureName), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPack(out)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rep, err := p.Verify(pub)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PackOK() {
		t.Fatal("re-signed pack verified against the original key")
	}
}

func TestPackUnlistedFileAndMissingEntry(t *testing.T) {
	_, priv := testKey(t)
	out := filepath.Join(t.TempDir(), "pack")
	buildTestPack(t, out, priv)
	if err := os.WriteFile(filepath.Join(out, "segments", "smuggled.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(out, MetaName)); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPack(out)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rep, err := p.Verify(nil)
	if err != nil {
		t.Fatal(err)
	}
	var unlisted, missing bool
	for _, prob := range rep.Problems {
		if strings.Contains(prob, "unlisted file") && strings.Contains(prob, "smuggled") {
			unlisted = true
		}
		if strings.Contains(prob, MetaName) && strings.Contains(prob, "not readable") {
			missing = true
		}
	}
	if !unlisted || !missing {
		t.Errorf("unlisted=%v missing=%v, problems %v", unlisted, missing, rep.Problems)
	}
}

func TestPackRefusesOverwriteAndEmptyTrail(t *testing.T) {
	_, priv := testKey(t)
	out := filepath.Join(t.TempDir(), "pack")
	buildTestPack(t, out, priv)
	if _, err := BuildPack(writeTrail(t), out, PackOptions{Key: priv}); err == nil {
		t.Error("packing over an existing pack must fail")
	}
	if _, err := BuildPack(t.TempDir(), filepath.Join(t.TempDir(), "p2"), PackOptions{Key: priv}); err == nil {
		t.Error("packing an empty trail must fail")
	}
	if _, err := BuildPack(writeTrail(t), filepath.Join(t.TempDir(), "p3"), PackOptions{}); err == nil {
		t.Error("packing without a key must fail")
	}
}

func TestKeyFilesRoundTrip(t *testing.T) {
	pub, priv := testKey(t)
	path := filepath.Join(t.TempDir(), "sign.key")
	if err := WriteKeyFiles(path, priv); err != nil {
		t.Fatal(err)
	}
	gotPriv, err := LoadPrivateKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if !gotPriv.Equal(priv) {
		t.Error("private key did not round-trip")
	}
	for _, f := range []string{path, path + ".pub"} {
		gotPub, err := LoadPublicKey(f)
		if err != nil {
			t.Fatal(err)
		}
		if !gotPub.Equal(pub) {
			t.Errorf("%s: public key did not round-trip", f)
		}
	}
	// The public file must not leak the seed, and must refuse to act as
	// a private key.
	data, err := os.ReadFile(path + ".pub")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "private_key_seed") {
		t.Error("public key file carries the private seed")
	}
	if _, err := LoadPrivateKey(path + ".pub"); err == nil {
		t.Error("loading a private key from the public file must fail")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("private key mode = %v, want 0600", info.Mode().Perm())
	}
}

// hexOf is a tiny test helper (hex.EncodeToString with a []byte view).
func hexOf(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, c := range b {
		out = append(out, digits[c>>4], digits[c&0xf])
	}
	return string(out)
}
