package evidence

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Key file schema identity.
const (
	KeySchemaID      = "cloudmon.evidence.key"
	KeySchemaVersion = "1.0.0"
)

// keyFile is the on-disk shape of a signing key. The private file holds
// the Ed25519 seed and is written 0600; the sibling .pub file carries
// only the public half and is what verifiers distribute.
type keyFile struct {
	SchemaID      string `json:"schema_id"`
	SchemaVersion string `json:"schema_version"`
	Algorithm     string `json:"algorithm"`
	KeyID         string `json:"key_id"`
	PublicKey     string `json:"public_key"`
	PrivateSeed   string `json:"private_key_seed,omitempty"`
}

// KeyID derives the stable identifier of a public key: "ed25519:" plus
// the first 16 hex digits of the key's SHA-256.
func KeyID(pub ed25519.PublicKey) string {
	sum := sha256.Sum256(pub)
	return "ed25519:" + hex.EncodeToString(sum[:8])
}

// GenerateKey creates a new Ed25519 signing key. A nil reader uses
// crypto/rand; tests pass a deterministic stream.
func GenerateKey(r io.Reader) (ed25519.PublicKey, ed25519.PrivateKey, error) {
	if r == nil {
		r = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, nil, fmt.Errorf("evidence: generate key: %w", err)
	}
	return pub, priv, nil
}

// WriteKeyFiles writes the private key to path (mode 0600) and the
// public half to path+".pub". Both files are canonical JSON.
func WriteKeyFiles(path string, priv ed25519.PrivateKey) error {
	pub := priv.Public().(ed25519.PublicKey)
	kf := keyFile{
		SchemaID:      KeySchemaID,
		SchemaVersion: KeySchemaVersion,
		Algorithm:     "ed25519",
		KeyID:         KeyID(pub),
		PublicKey:     hex.EncodeToString(pub),
		PrivateSeed:   hex.EncodeToString(priv.Seed()),
	}
	data, err := Marshal(kf)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o600); err != nil {
		return fmt.Errorf("evidence: write key file: %w", err)
	}
	kf.PrivateSeed = ""
	data, err = Marshal(kf)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path+".pub", append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("evidence: write public key file: %w", err)
	}
	return nil
}

// readKeyFile parses and sanity-checks a key file.
func readKeyFile(path string) (*keyFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("evidence: read key file: %w", err)
	}
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, fmt.Errorf("evidence: parse key file %s: %w", path, err)
	}
	if kf.SchemaID != KeySchemaID {
		return nil, fmt.Errorf("evidence: %s is not a key file (schema %q)", path, kf.SchemaID)
	}
	if kf.Algorithm != "ed25519" {
		return nil, fmt.Errorf("evidence: unsupported key algorithm %q in %s", kf.Algorithm, path)
	}
	return &kf, nil
}

// LoadPrivateKey loads an Ed25519 private key from a key file written by
// WriteKeyFiles.
func LoadPrivateKey(path string) (ed25519.PrivateKey, error) {
	kf, err := readKeyFile(path)
	if err != nil {
		return nil, err
	}
	if kf.PrivateSeed == "" {
		return nil, fmt.Errorf("evidence: %s holds no private seed (public key file?)", path)
	}
	seed, err := hex.DecodeString(kf.PrivateSeed)
	if err != nil || len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("evidence: malformed private seed in %s", path)
	}
	return ed25519.NewKeyFromSeed(seed), nil
}

// LoadPublicKey loads an Ed25519 public key from either a public or a
// private key file.
func LoadPublicKey(path string) (ed25519.PublicKey, error) {
	kf, err := readKeyFile(path)
	if err != nil {
		return nil, err
	}
	pub, err := hex.DecodeString(kf.PublicKey)
	if err != nil || len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("evidence: malformed public key in %s", path)
	}
	return ed25519.PublicKey(pub), nil
}
