package evidence

import (
	"archive/zip"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"cloudmon/internal/obs"
)

// PackSpec v1 schema identities and entry names. A pack is a directory
// (or zip — the layouts are byte-for-byte interchangeable) holding:
//
//	manifest.json   — SHA-256 + size of every other entry, sorted by name
//	meta.json       — producer build info, scenario, time range, tallies
//	signature.json  — Ed25519 signature over the exact manifest bytes
//	segments/       — the audit segments, copied verbatim
//
// The manifest covers meta.json and every segment; the signature covers
// the manifest; therefore one flipped byte anywhere breaks either an
// entry digest or the signature.
const (
	ManifestSchemaID  = "cloudmon.evidence.pack.manifest"
	MetaSchemaID      = "cloudmon.evidence.pack.meta"
	SignatureSchemaID = "cloudmon.evidence.pack.signature"
	PackSchemaVersion = "1.0.0"

	ManifestName  = "manifest.json"
	MetaName      = "meta.json"
	SignatureName = "signature.json"
	SegmentPrefix = "segments/"
)

// Entry is one manifest line: a named pack member with its content hash.
type Entry struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// Manifest is the digested table of contents. PackID is content-derived
// (SHA-256 over the canonical entries list), so identical evidence packs
// to identical IDs regardless of where or when they were written.
type Manifest struct {
	SchemaID      string  `json:"schema_id"`
	SchemaVersion string  `json:"schema_version"`
	PackID        string  `json:"pack_id"`
	Entries       []Entry `json:"entries"`
}

// Producer records what built the pack.
type Producer struct {
	Tool      string `json:"tool"`
	Module    string `json:"module"`
	GoVersion string `json:"go_version"`
}

// Meta carries the context a third-party auditor needs next to the raw
// segments: when the pack was cut, by what, from which scenario, over
// which time range, and the contract versions the verdicts bind to.
type Meta struct {
	SchemaID        string            `json:"schema_id"`
	SchemaVersion   string            `json:"schema_version"`
	CreatedUnixNano int64             `json:"created_unix_nano"`
	Producer        Producer          `json:"producer"`
	Scenario        string            `json:"scenario,omitempty"`
	Segments        int               `json:"segments"`
	Records         int               `json:"records"`
	LegacyRecords   int               `json:"legacy_records,omitempty"`
	TornLines       int               `json:"torn_lines,omitempty"`
	Outcomes        map[string]int    `json:"outcomes,omitempty"`
	FirstUnixNano   int64             `json:"first_unix_nano,omitempty"`
	LastUnixNano    int64             `json:"last_unix_nano,omitempty"`
	ContractDigests map[string]string `json:"contract_digests,omitempty"`
	SetDigest       string            `json:"contract_set_digest,omitempty"`
}

// Signature is the detached signature document: Ed25519 over the exact
// bytes of manifest.json, with the public key embedded so a pack is
// self-verifying (callers distrusting the embedded key pass their own).
type Signature struct {
	SchemaID      string `json:"schema_id"`
	SchemaVersion string `json:"schema_version"`
	Algorithm     string `json:"algorithm"`
	KeyID         string `json:"key_id"`
	PublicKey     string `json:"public_key"`
	Signature     string `json:"signature"`
}

// PackOptions parameterize BuildPack.
type PackOptions struct {
	// Key signs the manifest. Required.
	Key ed25519.PrivateKey
	// Scenario labels the run that produced the trail (meta.json).
	Scenario string
	// SetDigest is the contract-set digest of the monitor that wrote the
	// trail, when the packer knows it (loadmon does; auditctl derives the
	// per-trigger digests from the records instead).
	SetDigest string
	// Tool names the producer (defaults to "cloudmon").
	Tool string
	// CreatedUnixNano pins the pack timestamp (0 → now). Everything else
	// about a pack is content-derived, so pinning this makes the whole
	// pack reproducible.
	CreatedUnixNano int64
}

// BuildResult reports what BuildPack wrote.
type BuildResult struct {
	Path     string `json:"path"`
	Zip      bool   `json:"zip"`
	PackID   string `json:"pack_id"`
	KeyID    string `json:"key_id"`
	Segments int    `json:"segments"`
	Records  int    `json:"records"`
	Torn     int    `json:"torn,omitempty"`
	Legacy   int    `json:"legacy,omitempty"`
}

// sha256Hex streams r through SHA-256 and returns the hex digest and
// byte count.
func sha256Hex(r io.Reader) (string, int64, error) {
	h := sha256.New()
	n, err := io.Copy(h, r)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// BuildPack cuts a PackSpec v1 evidence pack from the audit trail under
// auditDir. out names either a directory (created; must not already
// contain a manifest) or a .zip file. The segments are copied verbatim —
// a torn tail is packed as-is and surfaced in meta, because the pack is
// evidence of what was on disk, not a cleaned-up copy.
func BuildPack(auditDir, out string, opts PackOptions) (*BuildResult, error) {
	if len(opts.Key) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("evidence: pack requires an Ed25519 signing key")
	}
	meta := Meta{
		SchemaID:        MetaSchemaID,
		SchemaVersion:   PackSchemaVersion,
		CreatedUnixNano: opts.CreatedUnixNano,
		Producer: Producer{
			Tool:      opts.Tool,
			Module:    "cloudmon",
			GoVersion: runtime.Version(),
		},
		Scenario:  opts.Scenario,
		SetDigest: opts.SetDigest,
		Outcomes:  map[string]int{},
	}
	if meta.Producer.Tool == "" {
		meta.Producer.Tool = "cloudmon"
	}
	if meta.CreatedUnixNano == 0 {
		meta.CreatedUnixNano = time.Now().UnixNano()
	}
	digests := map[string]string{}
	scan, err := obs.ScanAuditDir(auditDir, func(r *obs.AuditRecord) error {
		meta.Outcomes[r.Outcome]++
		if meta.FirstUnixNano == 0 || r.Time < meta.FirstUnixNano {
			meta.FirstUnixNano = r.Time
		}
		if r.Time > meta.LastUnixNano {
			meta.LastUnixNano = r.Time
		}
		if r.ContractDigest != "" {
			digests[r.Trigger] = r.ContractDigest
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(scan.Segments) == 0 {
		return nil, fmt.Errorf("evidence: no audit segments under %s", auditDir)
	}
	meta.Segments = len(scan.Segments)
	meta.Records = scan.Records
	meta.LegacyRecords = scan.Legacy
	meta.TornLines = len(scan.Torn)
	if len(digests) > 0 {
		meta.ContractDigests = digests
	}
	if len(meta.Outcomes) == 0 {
		meta.Outcomes = nil
	}

	// Hash every entry first: the manifest needs the digests before any
	// bytes are laid out.
	var entries []Entry
	for _, seg := range scan.Segments {
		f, err := os.Open(seg.Path)
		if err != nil {
			return nil, fmt.Errorf("evidence: open segment: %w", err)
		}
		sum, n, err := sha256Hex(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("evidence: hash segment %s: %w", seg.Path, err)
		}
		entries = append(entries, Entry{
			Name:   SegmentPrefix + filepath.Base(seg.Path),
			SHA256: sum,
			Size:   n,
		})
	}
	metaBytes, err := Marshal(meta)
	if err != nil {
		return nil, err
	}
	metaBytes = append(metaBytes, '\n')
	metaSum := sha256.Sum256(metaBytes)
	entries = append(entries, Entry{
		Name:   MetaName,
		SHA256: hex.EncodeToString(metaSum[:]),
		Size:   int64(len(metaBytes)),
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })

	packID, err := PackID(entries)
	if err != nil {
		return nil, err
	}
	manifest := Manifest{
		SchemaID:      ManifestSchemaID,
		SchemaVersion: PackSchemaVersion,
		PackID:        packID,
		Entries:       entries,
	}
	manifestBytes, err := Marshal(manifest)
	if err != nil {
		return nil, err
	}
	manifestBytes = append(manifestBytes, '\n')

	pub := opts.Key.Public().(ed25519.PublicKey)
	sig := Signature{
		SchemaID:      SignatureSchemaID,
		SchemaVersion: PackSchemaVersion,
		Algorithm:     "ed25519",
		KeyID:         KeyID(pub),
		PublicKey:     hex.EncodeToString(pub),
		Signature:     hex.EncodeToString(ed25519.Sign(opts.Key, manifestBytes)),
	}
	sigBytes, err := Marshal(sig)
	if err != nil {
		return nil, err
	}
	sigBytes = append(sigBytes, '\n')

	// Lay the pack out in sorted-name order (fixed entry ordering is part
	// of PackSpec v1: two packs of the same trail are byte-identical).
	files := []packMember{
		{name: ManifestName, data: manifestBytes},
		{name: MetaName, data: metaBytes},
		{name: SignatureName, data: sigBytes},
	}
	for _, seg := range scan.Segments {
		files = append(files, packMember{name: SegmentPrefix + filepath.Base(seg.Path), src: seg.Path})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })
	if strings.HasSuffix(out, ".zip") {
		err = writeZipPack(out, files)
	} else {
		err = writeDirPack(out, files)
	}
	if err != nil {
		return nil, err
	}
	return &BuildResult{
		Path:     out,
		Zip:      strings.HasSuffix(out, ".zip"),
		PackID:   packID,
		KeyID:    sig.KeyID,
		Segments: meta.Segments,
		Records:  meta.Records,
		Torn:     meta.TornLines,
		Legacy:   meta.LegacyRecords,
	}, nil
}

// PackID derives the content identifier from the sorted manifest
// entries: "sha256:" over their canonical JSON.
func PackID(entries []Entry) (string, error) {
	data, err := Marshal(entries)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// packMember is one file to lay out: inline bytes or a source to copy.
type packMember struct {
	name string
	data []byte
	src  string
}

func (m *packMember) open() (io.ReadCloser, error) {
	if m.src != "" {
		return os.Open(m.src)
	}
	return io.NopCloser(strings.NewReader(string(m.data))), nil
}

// writeDirPack lays the members out under a directory.
func writeDirPack(out string, files []packMember) error {
	if _, err := os.Stat(filepath.Join(out, ManifestName)); err == nil {
		return fmt.Errorf("evidence: %s already holds a pack manifest", out)
	}
	for _, m := range files {
		dst := filepath.Join(out, filepath.FromSlash(m.name))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return fmt.Errorf("evidence: pack dir: %w", err)
		}
		src, err := m.open()
		if err != nil {
			return fmt.Errorf("evidence: pack member %s: %w", m.name, err)
		}
		f, err := os.OpenFile(dst, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			src.Close()
			return fmt.Errorf("evidence: pack member %s: %w", m.name, err)
		}
		_, err = io.Copy(f, src)
		src.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("evidence: write pack member %s: %w", m.name, err)
		}
	}
	return nil
}

// writeZipPack lays the members out as a deterministic zip: entries in
// sorted-name order, zero timestamps, Store method (no compressor
// version in the byte stream).
func writeZipPack(out string, files []packMember) error {
	f, err := os.OpenFile(out, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("evidence: create pack zip: %w", err)
	}
	zw := zip.NewWriter(f)
	for _, m := range files {
		w, err := zw.CreateHeader(&zip.FileHeader{
			Name:   path.Clean(m.name),
			Method: zip.Store,
		})
		if err != nil {
			return fmt.Errorf("evidence: zip member %s: %w", m.name, err)
		}
		src, err := m.open()
		if err != nil {
			return fmt.Errorf("evidence: pack member %s: %w", m.name, err)
		}
		_, err = io.Copy(w, src)
		src.Close()
		if err != nil {
			return fmt.Errorf("evidence: write zip member %s: %w", m.name, err)
		}
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("evidence: finish pack zip: %w", err)
	}
	return f.Close()
}
