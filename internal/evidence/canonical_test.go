package evidence

import (
	"bytes"
	"math"
	"testing"
)

// TestCanonicalGoldenVectors pins the canonical form of the encoding's
// edge cases: key ordering (UTF-16 code units, so supplementary-plane
// characters sort below U+E000..U+FFFF), ES6 number shapes, the exact
// escaping table, and the int64 full-precision deviation the audit
// trail's nanosecond timestamps require.
func TestCanonicalGoldenVectors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"key sort", `{"b":1,"a":2}`, `{"a":2,"b":1}`},
		{"nested", `{"z":{"q":1,"p":2},"a":[{"k":1,"j":2}]}`, `{"a":[{"j":2,"k":1}],"z":{"p":2,"q":1}}`},
		// U+1D11E (𝄞) encodes as the surrogate pair D834 DD1E; its first
		// UTF-16 unit 0xD834 is below 0xFB01 (ﬁ), so 𝄞 sorts before ﬁ —
		// the opposite of code-point order. RFC 8785 §3.2.3.
		{"utf16 key order", `{"ﬁ":1,"𝄞":2,"z":3}`, `{"z":3,"𝄞":2,"ﬁ":1}`},
		{"empty containers", `{"a":{},"b":[]}`, `{"a":{},"b":[]}`},
		// Numbers: ES6 Number::toString shapes, except integers in the
		// int64 range keep exact digits (timestamps exceed 2^53).
		{"int64 precision", `[9223372036854775807,-9223372036854775808]`, `[9223372036854775807,-9223372036854775808]`},
		{"float shapes", `[1E21,0.0000001,-0.0,10.0,0.5]`, `[1e+21,1e-7,0,10,0.5]`},
		{"small magnitudes", `[1e-6,0.000001]`, `[0.000001,0.000001]`},
		// Strings: two-char escapes for the named controls, \u00xx for the
		// rest below 0x20, literal UTF-8 above, no HTML escaping.
		{"escapes", `["\u0041","\u000b","\b","a\tb","<&>"]`, `["A","\u000b","\b","a\tb","<&>"]`},
		{"literal unicode", `["€"]`, `["€"]`},
		{"quote and backslash", `["\"\\"]`, `["\"\\"]`},
		{"literals", `[true,false,null]`, `[true,false,null]`},
	}
	for _, tc := range cases {
		got, err := Canonicalize([]byte(tc.in))
		if err != nil {
			t.Errorf("%s: Canonicalize(%q): %v", tc.name, tc.in, err)
			continue
		}
		if string(got) != tc.want {
			t.Errorf("%s: Canonicalize(%q) = %q, want %q", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestCanonicalOrderIndependence is the property the pack format leans
// on: semantically identical documents — any key order, any
// insignificant whitespace — canonicalize to byte-identical output, and
// canonicalization is idempotent (encode ∘ decode is a fixed point).
func TestCanonicalOrderIndependence(t *testing.T) {
	variants := []string{
		`{"scenario":"cinder-mixed","records":19,"entries":[{"name":"a","sha256":"x"},{"name":"b","sha256":"y"}],"torn":0}`,
		`{"torn":0,"entries":[{"sha256":"x","name":"a"},{"sha256":"y","name":"b"}],"records":19,"scenario":"cinder-mixed"}`,
		"{ \"records\" : 19,\n  \"torn\": 0,\n  \"scenario\": \"cinder-mixed\",\n  \"entries\": [ { \"name\": \"a\", \"sha256\": \"x\" }, { \"name\": \"b\", \"sha256\": \"y\" } ] }",
	}
	var first []byte
	for i, doc := range variants {
		got, err := Canonicalize([]byte(doc))
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if first == nil {
			first = got
			continue
		}
		if !bytes.Equal(got, first) {
			t.Errorf("variant %d canonicalizes to %q, variant 0 to %q", i, got, first)
		}
	}
	again, err := Canonicalize(first)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, first) {
		t.Errorf("not idempotent: %q re-canonicalizes to %q", first, again)
	}
}

func TestCanonicalMarshalStructsAndErrors(t *testing.T) {
	got, err := Marshal(struct {
		B int    `json:"b"`
		A string `json:"a"`
	}{B: 1, A: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"a":"x","b":1}` {
		t.Errorf("struct fields not key-sorted: %s", got)
	}
	if _, err := Marshal(math.NaN()); err == nil {
		t.Error("NaN must not canonicalize (JSON has no representation)")
	}
	if _, err := Canonicalize([]byte(`{"a":1} {"b":2}`)); err == nil {
		t.Error("trailing document must be rejected")
	}
	if _, err := Canonicalize([]byte(`{"a":`)); err == nil {
		t.Error("truncated document must be rejected")
	}
	// Invalid UTF-8 input degrades to U+FFFD, deterministically.
	got, err = Marshal(string([]byte{'a', 0x80, 'b'}))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "\"a�b\"" {
		t.Errorf("invalid UTF-8 = %q, want the replacement character", got)
	}
}
