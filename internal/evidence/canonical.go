// Package evidence turns the monitor's crash-safe audit trail into
// tamper-evident, independently replayable evidence packs: canonical JSON
// for every digested document, a SHA-256 manifest over the pack entries,
// an Ed25519 signature over the manifest, and a replay path that
// re-evaluates every packed verdict against the packed state snapshots.
//
// The pack layout (PackSpec v1) is deterministic — same trail, same key,
// same metadata in, byte-identical pack out — so packs themselves can be
// diffed and digested.
package evidence

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

// Marshal encodes v as canonical JSON in the style of RFC 8785 (JCS):
// object keys sorted by UTF-16 code units, minimal string escaping, no
// HTML escaping, no insignificant whitespace, ES6 number formatting —
// with one deliberate deviation: integers that exceed IEEE-754's exact
// range (2^53) are serialized with full precision instead of being
// rounded, because audit records carry nanosecond timestamps. The
// encoding is deterministic: Marshal(Unmarshal(x)) is byte-identical
// regardless of the key order or whitespace of x.
//
// Every digested or signed document in an evidence pack — manifest,
// meta, signature — goes through this encoder; repolint forbids plain
// encoding/json marshalling elsewhere in this package.
func Marshal(v any) ([]byte, error) {
	// encoding/json handles struct tags and cycles; the generic re-encode
	// below imposes the canonical form. UseNumber keeps int64 precision.
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("evidence: marshal: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var g any
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("evidence: canonicalize: %w", err)
	}
	return appendCanonical(nil, g)
}

// Canonicalize re-encodes a JSON document in canonical form.
func Canonicalize(doc []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.UseNumber()
	var g any
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("evidence: canonicalize: %w", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err == nil {
		return nil, fmt.Errorf("evidence: canonicalize: trailing JSON document")
	}
	return appendCanonical(nil, g)
}

// appendCanonical appends the canonical encoding of a decoded generic
// JSON value (nil, bool, string, json.Number, []any, map[string]any).
func appendCanonical(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, "null"...), nil
	case bool:
		if x {
			return append(b, "true"...), nil
		}
		return append(b, "false"...), nil
	case string:
		return appendString(b, x), nil
	case json.Number:
		return appendNumber(b, x)
	case []any:
		b = append(b, '[')
		for i, e := range x {
			if i > 0 {
				b = append(b, ',')
			}
			var err error
			if b, err = appendCanonical(b, e); err != nil {
				return nil, err
			}
		}
		return append(b, ']'), nil
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return lessUTF16(keys[i], keys[j]) })
		b = append(b, '{')
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendString(b, k)
			b = append(b, ':')
			var err error
			if b, err = appendCanonical(b, x[k]); err != nil {
				return nil, err
			}
		}
		return append(b, '}'), nil
	}
	return nil, fmt.Errorf("evidence: cannot canonicalize %T", v)
}

// lessUTF16 orders strings by their UTF-16 code units — the property-name
// sort RFC 8785 specifies (it differs from byte order only for code
// points beyond the BMP, which sort after the surrogate range).
func lessUTF16(a, b string) bool {
	ua := utf16.Encode([]rune(a))
	ub := utf16.Encode([]rune(b))
	for i := 0; i < len(ua) && i < len(ub); i++ {
		if ua[i] != ub[i] {
			return ua[i] < ub[i]
		}
	}
	return len(ua) < len(ub)
}

// appendString appends the canonical JSON string encoding: `"` and `\`
// escaped, control characters as \b \t \n \f \r or lowercase \u00xx,
// everything else (including HTML-sensitive characters and non-ASCII)
// as literal UTF-8. Invalid UTF-8 is carried as U+FFFD, matching
// encoding/json's decoder.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch r {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\b':
			b = append(b, '\\', 'b')
		case '\t':
			b = append(b, '\\', 't')
		case '\n':
			b = append(b, '\\', 'n')
		case '\f':
			b = append(b, '\\', 'f')
		case '\r':
			b = append(b, '\\', 'r')
		default:
			if r < 0x20 {
				b = append(b, fmt.Sprintf("\\u%04x", r)...)
			} else {
				b = utf8.AppendRune(b, r)
			}
		}
	}
	return append(b, '"')
}

// appendNumber appends the canonical number form: integers in [-2^63,
// 2^63) with their exact digits, everything else as an IEEE-754 double
// in ES6 Number::toString shape (shortest round-trip decimal; exponent
// notation outside [1e-6, 1e21); -0 serializes as 0).
func appendNumber(b []byte, n json.Number) ([]byte, error) {
	s := string(n)
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return strconv.AppendInt(b, i, 10), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return nil, fmt.Errorf("evidence: bad number %q: %v", s, err)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("evidence: non-finite number %q", s)
	}
	if f == 0 {
		return append(b, '0'), nil
	}
	if abs := math.Abs(f); abs >= 1e21 || abs < 1e-6 {
		es := strconv.FormatFloat(f, 'e', -1, 64)
		mant, exp, _ := strings.Cut(es, "e")
		mant = strings.TrimSuffix(mant, ".0")
		sign, digits := exp[:1], strings.TrimLeft(exp[1:], "0")
		if digits == "" {
			digits = "0"
		}
		return append(b, (mant + "e" + sign + digits)...), nil
	}
	return strconv.AppendFloat(b, f, 'f', -1, 64), nil
}
