package evidence

import (
	"archive/zip"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"

	"cloudmon/internal/obs"
)

// Pack is an opened evidence pack — a directory or a zip, read through
// the same fs.FS.
type Pack struct {
	// Path is what was opened.
	Path string
	// Zip reports the container format.
	Zip bool
	// Manifest, Meta and Sig are the parsed envelope documents.
	Manifest Manifest
	Meta     Meta
	Sig      Signature
	// ManifestRaw is the exact manifest bytes — what the signature covers.
	ManifestRaw []byte

	fsys   fs.FS
	closer io.Closer
}

// OpenPack opens a pack directory or zip and parses its envelope. The
// entry hashes are NOT checked here — call Verify.
func OpenPack(pathName string) (*Pack, error) {
	info, err := os.Stat(pathName)
	if err != nil {
		return nil, fmt.Errorf("evidence: open pack: %w", err)
	}
	p := &Pack{Path: pathName}
	if info.IsDir() {
		p.fsys = os.DirFS(pathName)
	} else {
		zr, err := zip.OpenReader(pathName)
		if err != nil {
			return nil, fmt.Errorf("evidence: open pack zip: %w", err)
		}
		p.fsys = zr
		p.closer = zr
		p.Zip = true
	}
	p.ManifestRaw, err = fs.ReadFile(p.fsys, ManifestName)
	if err != nil {
		p.Close()
		return nil, fmt.Errorf("evidence: pack has no readable manifest: %w", err)
	}
	if err := json.Unmarshal(p.ManifestRaw, &p.Manifest); err != nil {
		p.Close()
		return nil, fmt.Errorf("evidence: parse manifest: %w", err)
	}
	if p.Manifest.SchemaID != ManifestSchemaID {
		p.Close()
		return nil, fmt.Errorf("evidence: unknown manifest schema %q", p.Manifest.SchemaID)
	}
	metaBytes, err := fs.ReadFile(p.fsys, MetaName)
	if err == nil {
		if err := json.Unmarshal(metaBytes, &p.Meta); err != nil {
			p.Close()
			return nil, fmt.Errorf("evidence: parse meta: %w", err)
		}
	}
	sigBytes, err := fs.ReadFile(p.fsys, SignatureName)
	if err == nil {
		if err := json.Unmarshal(sigBytes, &p.Sig); err != nil {
			p.Close()
			return nil, fmt.Errorf("evidence: parse signature: %w", err)
		}
	}
	return p, nil
}

// Close releases the underlying zip reader (no-op for directory packs).
func (p *Pack) Close() error {
	if p.closer != nil {
		return p.closer.Close()
	}
	return nil
}

// Records reads the packed audit chain.
func (p *Pack) Records() (*obs.ReadResult, error) {
	sub, err := fs.Sub(p.fsys, "segments")
	if err != nil {
		return nil, fmt.Errorf("evidence: pack segments: %w", err)
	}
	return obs.ReadAuditFS(sub)
}

// VerifyReport is the outcome of Pack.Verify. Problems are pack
// integrity failures (manifest/signature); Chain reports the packed
// trail's own chain verification, kept separate because a truthfully
// packed torn tail is a property of the trail, not of the pack.
type VerifyReport struct {
	PackID  string `json:"pack_id"`
	KeyID   string `json:"key_id,omitempty"`
	Entries int    `json:"entries"`
	// SignedByEmbedded reports that no caller key was supplied, so the
	// signature was checked against the pack's own embedded public key —
	// proof of integrity, not of origin.
	SignedByEmbedded bool     `json:"signed_by_embedded_key,omitempty"`
	Problems         []string `json:"problems,omitempty"`
	// Chain is the packed trail's chain verification.
	Chain *obs.VerifyResult `json:"chain,omitempty"`
}

// OK reports whether both the pack envelope and the packed chain
// verified cleanly.
func (r *VerifyReport) OK() bool {
	return len(r.Problems) == 0 && r.Chain != nil && r.Chain.OK()
}

// PackOK reports whether the pack envelope alone (hashes + signature)
// verified, regardless of chain findings.
func (r *VerifyReport) PackOK() bool { return len(r.Problems) == 0 }

// Verify checks the pack end to end: the Ed25519 signature over the
// exact manifest bytes (against pub, or the embedded key when pub is
// nil), the content-derived pack ID, every entry's SHA-256 and size,
// that no unlisted files ride along, and the packed chain itself.
func (p *Pack) Verify(pub ed25519.PublicKey) (*VerifyReport, error) {
	rep := &VerifyReport{
		PackID:  p.Manifest.PackID,
		KeyID:   p.Sig.KeyID,
		Entries: len(p.Manifest.Entries),
	}
	problem := func(format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}

	// Signature over the exact manifest bytes.
	embedded, err := hex.DecodeString(p.Sig.PublicKey)
	if err != nil || len(embedded) != ed25519.PublicKeySize {
		embedded = nil
	}
	key := pub
	if key == nil {
		rep.SignedByEmbedded = true
		key = embedded
	}
	sig, sigErr := hex.DecodeString(p.Sig.Signature)
	switch {
	case p.Sig.Signature == "":
		problem("signature: pack has no signature document")
	case sigErr != nil || len(sig) != ed25519.SignatureSize:
		problem("signature: malformed signature encoding")
	case key == nil:
		problem("signature: no usable public key (embedded key malformed and none supplied)")
	case !ed25519.Verify(key, p.ManifestRaw, sig):
		problem("signature: Ed25519 verification of manifest.json failed (key %s)", KeyID(key))
	default:
		if pub != nil && embedded != nil && !pub.Equal(ed25519.PublicKey(embedded)) {
			problem("signature: embedded public key %s differs from the supplied key %s",
				KeyID(embedded), KeyID(pub))
		}
	}

	// Content-derived pack ID.
	wantID, err := PackID(p.Manifest.Entries)
	if err != nil {
		return nil, err
	}
	if p.Manifest.PackID != wantID {
		problem("manifest mismatch: pack_id %s does not match entries (recomputed %s)",
			p.Manifest.PackID, wantID)
	}

	// Every listed entry must hash to its manifest line.
	listed := map[string]bool{ManifestName: true, SignatureName: true}
	for _, e := range p.Manifest.Entries {
		listed[e.Name] = true
		f, err := p.fsys.Open(e.Name)
		if err != nil {
			problem("manifest mismatch: %s listed but not readable: %v", e.Name, err)
			continue
		}
		sum, n, err := sha256Hex(f)
		f.Close()
		if err != nil {
			problem("manifest mismatch: %s: %v", e.Name, err)
			continue
		}
		if n != e.Size {
			problem("manifest mismatch: %s: size %d != manifest %d", e.Name, n, e.Size)
		}
		if sum != e.SHA256 {
			problem("manifest mismatch: %s: sha256 %s != manifest %s", e.Name, sum, e.SHA256)
		}
	}

	// Nothing may ride along unlisted.
	err = fs.WalkDir(p.fsys, ".", func(name string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if !listed[name] {
			problem("unlisted file in pack: %s", name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("evidence: walk pack: %w", err)
	}

	// The packed chain itself.
	recs, err := p.Records()
	if err != nil {
		problem("chain: %v", err)
	} else {
		rep.Chain = obs.VerifyChain(recs)
	}
	return rep, nil
}
