// Package cloudmon is a model-driven cloud-monitor generator, a complete
// reproduction of "Generating Cloud Monitors from Models to Secure Clouds"
// (DSN 2018).
//
// Design models — a UML resource model and a protocol state machine with
// OCL invariants, guards and effects — are turned into Design-by-Contract
// method contracts; the contracts drive an HTTP proxy (the cloud monitor)
// that verifies every request against the specified functional and
// security requirements of a private cloud.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the CLIs (uml2go, cloudsim, cloudmon, mutantlab)
// and examples/ the runnable scenarios. The benchmark and experiment
// harness in this root package regenerates every measurable artifact of
// the paper (EXPERIMENTS.md records paper-vs-measured).
package cloudmon
