package main

import (
	"crypto/ed25519"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"cloudmon/internal/evidence"
	"cloudmon/internal/loadgen"
	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
)

// printFleetSummary reports where the sharded run's traffic went.
func printFleetSummary(fdep *loadgen.FleetDeployment, out io.Writer) {
	st := fdep.Front.Stats()
	fmt.Fprintf(out, "fleet: %d instances, %d projects, %d requests routed, %d remaps, %d fence waits\n",
		fdep.Front.Ring().Size(), st.Projects, st.Requests, st.Remaps, st.FenceWaits)
	for _, in := range fdep.Instances {
		fmt.Fprintf(out, "  %s: %d requests\n", in.ID, st.Routed[in.ID])
	}
}

// verifyFleet asserts the federated run invariants: per-instance and
// aggregate verdict counters agree with the federated exposition, the
// summed audit trails agree with the summed verdicts, routing stayed
// stable, every per-instance evidence pack — and the merged trail —
// replays with zero divergence, and a mid-run resize remaps only the
// rendezvous-moved projects without dropping or misjudging a request.
func verifyFleet(fdep *loadgen.FleetDeployment, sc loadgen.Scenario, r *loadgen.Report, opts loadgen.DeployOptions, out io.Writer) error {
	// 1. The federated exposition must reproduce every instance's verdict
	// counters under its instance label — metrics ≡ monitor state.
	doc, err := fdep.FederatedMetrics()
	if err != nil {
		return fmt.Errorf("verify: federate metrics: %w", err)
	}
	samples, err := obs.ParseText([]byte(doc))
	if err != nil {
		return fmt.Errorf("verify: parse federated exposition: %w", err)
	}
	scraped := map[string]map[string]float64{}
	for _, s := range obs.Find(samples, "cloudmon_verdicts_total") {
		id := s.Labels["instance"]
		if scraped[id] == nil {
			scraped[id] = map[string]float64{}
		}
		scraped[id][s.Labels["outcome"]] += s.Value
	}
	for _, in := range fdep.Instances {
		for outcome, n := range in.Sys.Monitor.Outcomes() {
			if got := int(scraped[in.ID][outcome.String()]); got != n {
				return fmt.Errorf("verify: federation reports %s=%d for %s, instance counters say %d",
					outcome, got, in.ID, n)
			}
		}
	}

	// 2. The summed audit diff must match the summed verdict diff on
	// every non-OK outcome — one record per violation, fleet-wide.
	for outcome, n := range r.Verdicts {
		if outcome == monitor.OK.String() {
			continue
		}
		if r.Audit[outcome] != n {
			return fmt.Errorf("verify: %d %s verdicts across the fleet but %d audit records", n, outcome, r.Audit[outcome])
		}
	}
	for outcome, n := range r.Audit {
		if r.Verdicts[outcome] != n {
			return fmt.Errorf("verify: %d audit records for %s but %d verdicts", n, outcome, r.Verdicts[outcome])
		}
	}

	// 3. Every instance's chain verifies on disk and every record is
	// stamped with the instance that judged it.
	for _, in := range fdep.Instances {
		if in.Audit == nil {
			continue
		}
		if err := in.Audit.Sync(); err != nil {
			return fmt.Errorf("verify: sync %s audit log: %w", in.ID, err)
		}
		res, err := obs.VerifyAuditDir(in.AuditDir)
		if err != nil {
			return fmt.Errorf("verify: %s audit chain: %w", in.ID, err)
		}
		if !res.OK() {
			return fmt.Errorf("verify: %s audit chain problems: %s", in.ID, strings.Join(res.Problems, "; "))
		}
		read, err := obs.ReadAuditDir(in.AuditDir)
		if err != nil {
			return fmt.Errorf("verify: read %s audit dir: %w", in.ID, err)
		}
		for _, rec := range read.Records {
			if rec.Instance != in.ID {
				return fmt.Errorf("verify: record seq %d in %s trail is stamped %q", rec.Seq, in.ID, rec.Instance)
			}
		}
	}

	// 4. Routing stayed stable: no remaps on a steady run, and every
	// project the front saw sits with its ring owner.
	st := fdep.Front.Stats()
	if st.Remaps != 0 {
		return fmt.Errorf("verify: steady fleet run recorded %d remaps — per-project routing is unstable", st.Remaps)
	}
	ring := fdep.Front.Ring()
	for project, owner := range fdep.Front.Owners() {
		if want := ring.Owner(project); owner != want {
			return fmt.Errorf("verify: project %s is owned by %s, ring assigns %s", project, owner, want)
		}
	}

	// 5. Evidence: each instance's trail packs and replays clean on its
	// own, and the merged record set replays clean as one trail.
	if err := verifyFleetPacks(fdep, sc, out); err != nil {
		return err
	}

	// 6. Elasticity: a fresh fleet absorbing a mid-run 3→4 resize drops
	// and misjudges nothing and remaps at most 40% of its projects.
	return verifyFleetResize(opts, out)
}

// verifyFleetPacks builds one signed pack per instance, verifies and
// replays each, then replays the merged instance segments as one record
// set — the fleet-wide divergence check.
func verifyFleetPacks(fdep *loadgen.FleetDeployment, sc loadgen.Scenario, out io.Writer) error {
	if len(fdep.Instances) == 0 || fdep.Instances[0].Audit == nil {
		return nil
	}
	tmp, err := os.MkdirTemp("", "loadmon-fleet-pack-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	_, priv, err := evidence.GenerateKey(nil)
	if err != nil {
		return err
	}
	replayer, err := monitor.NewReplayer(fdep.Instances[0].Sys.Contracts)
	if err != nil {
		return fmt.Errorf("verify: build replayer: %w", err)
	}
	var merged []obs.AuditRecord
	for _, in := range fdep.Instances {
		packPath := filepath.Join(tmp, in.ID)
		if _, err := evidence.BuildPack(in.AuditDir, packPath, evidence.PackOptions{
			Key:       priv,
			Scenario:  sc.Name,
			SetDigest: in.Sys.Contracts.Digest(),
			Tool:      "loadmon",
		}); err != nil {
			return fmt.Errorf("verify: build %s evidence pack: %w", in.ID, err)
		}
		p, err := evidence.OpenPack(packPath)
		if err != nil {
			return fmt.Errorf("verify: open %s evidence pack: %w", in.ID, err)
		}
		rep, err := p.Verify(priv.Public().(ed25519.PublicKey))
		if err != nil {
			p.Close()
			return fmt.Errorf("verify: verify %s evidence pack: %w", in.ID, err)
		}
		if !rep.PackOK() {
			p.Close()
			return fmt.Errorf("verify: %s evidence pack envelope failed: %s", in.ID, strings.Join(rep.Problems, "; "))
		}
		recs, err := p.Records()
		p.Close()
		if err != nil {
			return fmt.Errorf("verify: read %s packed records: %w", in.ID, err)
		}
		if sum := replayer.ReplayAll(recs.Records); !sum.OK() {
			return fmt.Errorf("verify: %s evidence replay diverged on %d of %d verdicts", in.ID, sum.Diverged, sum.Total)
		}
		merged = append(merged, recs.Records...)
	}
	sum := replayer.ReplayAll(merged)
	if !sum.OK() {
		return fmt.Errorf("verify: merged fleet replay diverged on %d of %d verdicts", sum.Diverged, sum.Total)
	}
	fmt.Fprintf(out, "verify: %d instance packs and the merged trail replay clean (%d/%d verdicts reproduced, %d skipped)\n",
		len(fdep.Instances), sum.Matched, sum.Total, sum.Skipped)
	return nil
}

// verifyFleetResize deploys a fresh 4-instance fleet rung at 3, grows it
// to 4 a third of the way through a mixed run, and asserts the elasticity
// invariants: zero transport errors, one verdict per request, no
// monitor-error or unverified outcomes, and a remap set bounded by 40% of
// the projects (rendezvous moves ~1/N′).
func verifyFleetResize(opts loadgen.DeployOptions, out io.Writer) error {
	const (
		tenants  = 120
		requests = 1800
	)
	fo := loadgen.FleetOptions{DeployOptions: opts, Instances: 4, TenantCount: tenants}
	// The resize proof must attribute every anomaly to routing alone:
	// no fault injection, no audit trail to slow it down, synchronous
	// verification semantics stay whatever the main run used.
	fo.Faults = nil
	fo.AuditDir = ""
	fo.MaxLog = requests + 1024
	fdep, err := loadgen.DeployFleet(fo)
	if err != nil {
		return fmt.Errorf("verify: deploy resize fleet: %w", err)
	}
	defer fdep.Close()
	if err := fdep.Resize(3); err != nil {
		return fmt.Errorf("verify: shrink resize fleet: %w", err)
	}
	oldRing := fdep.Front.Ring()

	var count atomic.Int64
	var once sync.Once
	var resizeErr error
	tgt := fdep.Target
	inner := tgt.HTTPClient.Transport
	tgt.HTTPClient = &http.Client{Transport: tripperFunc(func(req *http.Request) (*http.Response, error) {
		if count.Add(1) == requests/3 {
			once.Do(func() { resizeErr = fdep.Resize(4) })
		}
		return inner.RoundTrip(req)
	})}

	sc, err := loadgen.Lookup("cinder-mixed")
	if err != nil {
		return err
	}
	sc.Name = "fleet-resize"
	sc.Requests = requests
	sc.Warmup = 0
	sc.Prepopulate = 4
	sc.Clients = 16
	rep, err := loadgen.Run(sc, tgt)
	if err != nil {
		return fmt.Errorf("verify: resize run: %w", err)
	}
	if resizeErr != nil {
		return fmt.Errorf("verify: mid-run resize: %w", resizeErr)
	}
	if rep.Errors != 0 {
		return fmt.Errorf("verify: %d transport errors across the resize — requests were dropped", rep.Errors)
	}
	total := 0
	for _, n := range rep.Verdicts {
		total += n
	}
	if total != requests {
		return fmt.Errorf("verify: resize run verdicts sum to %d, want %d — a request was dropped or double-judged", total, requests)
	}
	for _, outcome := range []monitor.Outcome{monitor.Error, monitor.Unverified} {
		if n := rep.Verdicts[outcome.String()]; n != 0 {
			return fmt.Errorf("verify: resize run recorded %d %s verdicts on a fault-free cloud — a request was misjudged", n, outcome)
		}
	}

	newRing := fdep.Front.Ring()
	if newRing.Size() != 4 {
		return fmt.Errorf("verify: ring size %d after resize, want 4", newRing.Size())
	}
	moved := 0
	for _, tn := range fdep.Tenants {
		if oldRing.Owner(tn.ProjectID) != newRing.Owner(tn.ProjectID) {
			moved++
		}
	}
	if bound := tenants * 40 / 100; moved > bound {
		return fmt.Errorf("verify: 3→4 resize moved %d of %d projects, want ≤ %d (40%%)", moved, tenants, bound)
	}
	st := fdep.Front.Stats()
	if st.Remaps == 0 {
		return fmt.Errorf("verify: resize recorded no remaps — the fourth instance took nothing over")
	}
	if int(st.Remaps) > moved {
		return fmt.Errorf("verify: front recorded %d remaps for %d moved projects — a project remapped twice", st.Remaps, moved)
	}
	for project, owner := range fdep.Front.Owners() {
		if want := newRing.Owner(project); owner != want {
			return fmt.Errorf("verify: project %s stuck on %s after resize, ring assigns %s", project, owner, want)
		}
	}
	fmt.Fprintf(out, "verify: 3→4 resize moved %d/%d projects (%d remaps, %d fence waits), zero dropped or misjudged\n",
		moved, tenants, st.Remaps, st.FenceWaits)
	return nil
}

// emitFleetPacks writes one signed evidence pack per instance under
// outPath (a directory), named after the instance.
func emitFleetPacks(fdep *loadgen.FleetDeployment, sc loadgen.Scenario, outPath, keyFile string, out io.Writer) error {
	if len(fdep.Instances) == 0 || fdep.Instances[0].Audit == nil {
		return fmt.Errorf("-pack needs the fleet deployment to run with an audit trail")
	}
	var priv ed25519.PrivateKey
	var err error
	if keyFile != "" {
		if priv, err = evidence.LoadPrivateKey(keyFile); err != nil {
			return err
		}
	} else {
		if _, priv, err = evidence.GenerateKey(nil); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(outPath, 0o755); err != nil {
		return err
	}
	for _, in := range fdep.Instances {
		if err := in.Audit.Sync(); err != nil {
			return fmt.Errorf("pack: sync %s audit log: %w", in.ID, err)
		}
		res, err := evidence.BuildPack(in.AuditDir, filepath.Join(outPath, in.ID), evidence.PackOptions{
			Key:       priv,
			Scenario:  sc.Name,
			SetDigest: in.Sys.Contracts.Digest(),
			Tool:      "loadmon",
		})
		if err != nil {
			return fmt.Errorf("pack %s: %w", in.ID, err)
		}
		fmt.Fprintf(out, "pack: %s: %d records in %d segments -> %s (pack %s, key %s)\n",
			in.ID, res.Records, res.Segments, res.Path, res.PackID, res.KeyID)
	}
	return nil
}

type tripperFunc func(*http.Request) (*http.Response, error)

func (f tripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
