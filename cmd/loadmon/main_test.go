package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cloudmon/internal/obs"
)

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
	for _, name := range []string{"cinder-mixed", "cinder-read-heavy", "cinder-write-heavy",
		"cinder-forbidden", "cinder-open-loop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestRunJSON is the acceptance check: `loadmon -scenario cinder-mixed
// -json` against the in-process cloudsim produces a stable JSON report
// with request counts, verdict tallies and latency percentiles.
func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "cinder-mixed", "-json", "-seed", "7"}
	if testing.Short() {
		args = append(args, "-requests", "400", "-warmup", "40", "-clients", "8")
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var report struct {
		Scenario string         `json:"scenario"`
		Requests int            `json:"requests"`
		Errors   int            `json:"errors"`
		Verdicts map[string]int `json:"verdicts"`
		Latency  struct {
			P50 float64 `json:"p50_us"`
			P95 float64 `json:"p95_us"`
			P99 float64 `json:"p99_us"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out.String())
	}
	if report.Scenario != "cinder-mixed" {
		t.Errorf("scenario = %q", report.Scenario)
	}
	if report.Requests <= 0 || report.Errors != 0 {
		t.Errorf("requests=%d errors=%d", report.Requests, report.Errors)
	}
	if len(report.Verdicts) == 0 {
		t.Error("no verdict tallies in report")
	}
	if report.Latency.P50 <= 0 || report.Latency.P99 < report.Latency.P50 {
		t.Errorf("implausible percentiles: %+v", report.Latency)
	}
}

func TestRunTextWithOverrides(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scenario", "cinder-read-heavy", "-requests", "200", "-warmup", "20",
		"-clients", "4", "-seed", "3", "-cache-ttl", "25ms", "-parallel-snapshots"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"cinder-read-heavy", "requests", "p95"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadArgs(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-scenario", "no-such-scenario"},
		{"-mode", "panic"},
		{"-level", "extreme"},
		{"-target", "http://127.0.0.1:1"}, // missing -cloud/-project
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestVerifyWithAudit runs the full three-way cross-check: verdict
// tallies, the /metrics registry and the on-disk audit trail must agree.
func TestVerifyWithAudit(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-scenario", "cinder-mixed", "-requests", "200", "-clients", "4",
		"-seed", "11", "-audit-dir", dir, "-verify"}, &out)
	if err != nil {
		t.Fatalf("run -verify: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: structural invariants hold") {
		t.Fatalf("no verify confirmation:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "audit records:") {
		t.Fatalf("report has no audit tallies:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stage pre_snapshot") {
		t.Fatalf("report has no stage breakdown:\n%s", out.String())
	}
	// The trail must be inspectable after the run.
	res, err := obs.VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Records == 0 {
		t.Fatalf("audit chain: %+v problems %v", res, res.Problems)
	}
}
