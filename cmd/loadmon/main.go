// Command loadmon runs a named load scenario against the cloud monitor
// and reports throughput, latency percentiles and verdict tallies.
//
// By default it deploys the simulated cloud and the monitor in process
// (no sockets) and hammers the proxy:
//
//	loadmon -scenario cinder-mixed -json
//	loadmon -scenario cinder-read-heavy -cache-ttl 50ms -clients 32
//	loadmon -list
//
// Chaos runs wrap the in-process cloud in the fault injector and pick a
// degradation policy for the monitor; -verify asserts the structural
// verdict invariants afterwards and exits non-zero on violation:
//
//	loadmon -scenario cinder-mixed -requests 600 \
//	        -faults internal/faults/testdata/chaos.json \
//	        -fail-policy open -verify
//
// With -target it instead drives an already-running monitor over HTTP,
// authenticating each role against the cloud (-cloud, -project must point
// at the deployment cloudsim printed):
//
//	loadmon -target http://127.0.0.1:8000 -cloud http://127.0.0.1:8776 \
//	        -project <id> -scenario cinder-mixed
package main

import (
	"crypto/ed25519"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cloudmon/internal/evidence"
	"cloudmon/internal/faults"
	"cloudmon/internal/loadgen"
	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
	"cloudmon/internal/osclient"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadmon:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadmon", flag.ContinueOnError)
	scenario := fs.String("scenario", "cinder-mixed", "named scenario to run (see -list)")
	list := fs.Bool("list", false, "list scenarios and exit")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	clients := fs.Int("clients", 0, "override concurrent clients")
	requests := fs.Int("requests", 0, "override total request budget")
	duration := fs.Duration("duration", 0, "override run duration (used when -requests is 0)")
	rate := fs.Float64("rate", -1, "override open-loop arrival rate (req/s; 0 = closed loop)")
	seed := fs.Int64("seed", -1, "override mix seed")
	warmup := fs.Int("warmup", -1, "override warmup request count")
	modeName := fs.String("mode", "enforce", "monitor mode for the in-process deployment: enforce | observe")
	levelName := fs.String("level", "full", "check level for the in-process deployment: full | pre-only")
	evalName := fs.String("eval", "compiled", "evaluation engine for the in-process deployment: compiled | lazy | eager")
	postName := fs.String("post", "sync", "post-verification mode: sync | async (defer post-checks to a bounded worker queue)")
	postQueue := fs.Int("post-queue", 0, "async post queue capacity (0 = default)")
	postWorkers := fs.Int("post-workers", 0, "async post worker pool size (0 = default)")
	backpressureName := fs.String("post-backpressure", "block", "saturated async queue policy: block | shed")
	noFacts := fs.Bool("no-facts", false, "disable compile-time fact pruning in the lazy engine (A/B baseline)")
	parallel := fs.Bool("parallel-snapshots", false, "resolve state snapshots concurrently")
	workers := fs.Int("snapshot-workers", 0, "bound the parallel snapshot pool (0 = default)")
	cacheTTL := fs.Duration("cache-ttl", 0, "pre-state read-cache TTL (0 = disabled)")
	faultsPath := fs.String("faults", "", "fault-injection profile (JSON) for the in-process cloud")
	fleetN := fs.Int("fleet", 0, "deploy a sharded fleet of this many monitor instances behind a consistent-hash front (in-process only)")
	fleetProjects := fs.Int("fleet-projects", 0, "tenant projects the fleet workload spreads across (0 = 4 × fleet size)")
	fleetRTT := fs.Duration("fleet-rtt", 0, "simulated network round trip on every monitor→cloud request (fleet runs)")
	fleetConns := fs.Int("fleet-conns", 0, "per-instance backend connection budget (fleet runs; 0 = unlimited)")
	policyName := fs.String("fail-policy", "closed", "snapshot-failure policy: closed | open | degrade")
	cloudTimeout := fs.Duration("cloud-timeout", 0, "shared cloud-facing deadline (snapshot attempts and forwards; 0 = default)")
	retryAttempts := fs.Int("retry-attempts", 0, "override snapshot retry attempts (0 = default)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "enable the snapshot circuit breaker at this consecutive-failure threshold (0 = off)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "circuit-breaker open cooldown (0 = default)")
	verify := fs.Bool("verify", false, "assert structural verdict invariants after the run (in-process only)")
	auditDir := fs.String("audit-dir", "", "audit-trail directory for the in-process monitor (-verify defaults to a temp dir)")
	packOut := fs.String("pack", "", "write a signed evidence pack of the run's audit trail here (dir or .zip; in-process only)")
	packKey := fs.String("pack-key", "", "Ed25519 private key file for -pack (see auditctl keygen; empty = ephemeral run key)")
	metricsAddr := fs.String("metrics-addr", "", "scrape this /metrics endpoint after the run (with -target; e.g. http://127.0.0.1:8002)")
	target := fs.String("target", "", "drive an external monitor at this URL instead of deploying in process")
	cloudURL := fs.String("cloud", "", "cloud URL for role authentication (required with -target)")
	project := fs.String("project", "", "project id (required with -target)")
	creds := fs.String("credentials", "admin=alice:pw-alice,member=bob:pw-bob,user=carol:pw-carol",
		"role=user:password list for -target authentication")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, sc := range loadgen.Scenarios() {
			fmt.Fprintf(out, "%-18s %s\n", sc.Name, sc.Description)
		}
		return nil
	}

	sc, err := loadgen.Lookup(*scenario)
	if err != nil {
		return err
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *requests > 0 {
		sc.Requests = *requests
	}
	if *duration > 0 {
		sc.Duration = *duration
		if *requests == 0 {
			sc.Requests = 0
		}
	}
	if *rate >= 0 {
		sc.Rate = *rate
	}
	if *seed >= 0 {
		sc.Seed = *seed
	}
	if *warmup >= 0 {
		sc.Warmup = *warmup
	}

	var policy monitor.FailPolicy
	switch *policyName {
	case "closed", "":
		policy = monitor.FailClosed
	case "open":
		policy = monitor.FailOpen
	case "degrade":
		policy = monitor.Degrade
	default:
		return fmt.Errorf("unknown fail-policy %q (want closed, open or degrade)", *policyName)
	}

	postMode, err := monitor.ParsePostMode(*postName)
	if err != nil {
		return err
	}
	backpressure, err := monitor.ParseBackpressure(*backpressureName)
	if err != nil {
		return err
	}

	var tgt loadgen.Target
	var dep *loadgen.Deployment
	var fdep *loadgen.FleetDeployment
	var depOpts loadgen.DeployOptions
	if *target != "" {
		if *fleetN > 0 {
			return fmt.Errorf("-fleet deploys in process and cannot combine with -target")
		}
		if *verify {
			return fmt.Errorf("-verify needs the in-process deployment (it reads monitor counters)")
		}
		if *packOut != "" {
			return fmt.Errorf("-pack needs the in-process deployment (it reads the local audit trail)")
		}
		tgt, err = externalTarget(*target, *cloudURL, *project, *creds)
		if err != nil {
			return err
		}
	} else {
		var mode monitor.Mode
		switch *modeName {
		case "enforce":
			mode = monitor.Enforce
		case "observe":
			mode = monitor.Observe
		default:
			return fmt.Errorf("unknown mode %q (want enforce or observe)", *modeName)
		}
		var level monitor.CheckLevel
		switch *levelName {
		case "full":
			level = monitor.CheckFull
		case "pre-only":
			level = monitor.CheckPreOnly
		default:
			return fmt.Errorf("unknown level %q (want full or pre-only)", *levelName)
		}
		evalMode, err := monitor.ParseEvalMode(*evalName)
		if err != nil {
			return err
		}
		if policy == monitor.Degrade && *cacheTTL <= 0 {
			return fmt.Errorf("-fail-policy degrade needs -cache-ttl > 0 (the policy falls back to the pre-state cache)")
		}
		opts := loadgen.DeployOptions{
			Mode:              mode,
			Level:             level,
			Eval:              evalMode,
			NoFacts:           *noFacts,
			FailPolicy:        policy,
			Post:              postMode,
			PostQueueCap:      *postQueue,
			PostWorkers:       *postWorkers,
			PostBackpressure:  backpressure,
			ParallelSnapshots: *parallel,
			SnapshotWorkers:   *workers,
			PreStateCacheTTL:  *cacheTTL,
			CloudTimeout:      *cloudTimeout,
		}
		if *retryAttempts > 0 {
			opts.Retry.MaxAttempts = *retryAttempts
		}
		if *breakerThreshold > 0 {
			opts.Breaker = &osclient.BreakerConfig{
				FailureThreshold: *breakerThreshold,
				Cooldown:         *breakerCooldown,
			}
		}
		if *faultsPath != "" {
			profile, err := faults.LoadProfile(*faultsPath)
			if err != nil {
				return err
			}
			opts.Faults = profile
		}
		if *verify && sc.Requests > 0 {
			// Keep every verdict so the counters can be cross-checked
			// against the log.
			opts.MaxLog = sc.Requests + 1024
		}
		opts.AuditDir = *auditDir
		if opts.AuditDir == "" && (*verify || *packOut != "") {
			// -verify cross-checks audit counts against verdict counters,
			// and -pack snapshots the trail — both always need one.
			tmp, err := os.MkdirTemp("", "loadmon-audit-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			opts.AuditDir = tmp
		}
		if *fleetN > 0 {
			fdep, err = loadgen.DeployFleet(loadgen.FleetOptions{
				DeployOptions: opts,
				Instances:     *fleetN,
				TenantCount:   *fleetProjects,
				RTT:           *fleetRTT,
				Conns:         *fleetConns,
			})
			if err != nil {
				return err
			}
			defer fdep.Close()
			tgt = fdep.Target
		} else {
			dep, err = loadgen.Deploy(opts)
			if err != nil {
				return err
			}
			defer dep.Close()
			tgt = dep.Target
		}
		depOpts = opts
	}

	report, err := loadgen.Run(sc, tgt)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		if err := scrapeMetrics(*metricsAddr, report, out); err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else if _, err := fmt.Fprint(out, report.Text()); err != nil {
		return err
	}
	if fdep != nil {
		printFleetSummary(fdep, out)
	}
	if *verify {
		if err := verifyReport(sc, report, policy, postMode, report.AsyncPost); err != nil {
			return err
		}
		if fdep != nil {
			if err := verifyFleet(fdep, sc, report, depOpts, out); err != nil {
				return err
			}
			fmt.Fprintln(out, "verify: fleet invariants hold (aggregate verdicts ≡ federated metrics ≡ merged audit; routing stable; resize bounded)")
		} else {
			if err := verifyObs(dep, report); err != nil {
				return err
			}
			if err := verifyFetch(sc, report, dep); err != nil {
				return err
			}
			if err := verifyAsync(sc, report, dep, depOpts, out); err != nil {
				return err
			}
			if err := verifyPackReplay(dep, sc, out); err != nil {
				return err
			}
			fmt.Fprintln(out, "verify: structural invariants hold (verdicts ≡ metrics ≡ audit ≡ fetch economy)")
		}
	}
	if *packOut != "" {
		if fdep != nil {
			if err := emitFleetPacks(fdep, sc, *packOut, *packKey, out); err != nil {
				return err
			}
		} else if err := emitPack(dep, sc, *packOut, *packKey, out); err != nil {
			return err
		}
	}
	return nil
}

// emitPack cuts a signed evidence pack of the run's audit trail: the
// verdicts, their snapshots and the contract-set digest, hashed,
// signed and portable — what -pack hands to an external auditor.
func emitPack(dep *loadgen.Deployment, sc loadgen.Scenario, outPath, keyFile string, out io.Writer) error {
	if dep == nil || dep.Audit == nil {
		return fmt.Errorf("-pack needs the in-process deployment with an audit trail")
	}
	if err := dep.Audit.Sync(); err != nil {
		return fmt.Errorf("pack: sync audit log: %w", err)
	}
	var priv ed25519.PrivateKey
	var err error
	if keyFile != "" {
		if priv, err = evidence.LoadPrivateKey(keyFile); err != nil {
			return err
		}
	} else {
		// Ephemeral run key: the pack still proves integrity (the public
		// half is embedded); origin proof needs -pack-key with a kept key.
		if _, priv, err = evidence.GenerateKey(nil); err != nil {
			return err
		}
	}
	res, err := evidence.BuildPack(dep.Audit.Dir(), outPath, evidence.PackOptions{
		Key:       priv,
		Scenario:  sc.Name,
		SetDigest: dep.Sys.Contracts.Digest(),
		Tool:      "loadmon",
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pack: %d records in %d segments -> %s (pack %s, key %s)\n",
		res.Records, res.Segments, res.Path, res.PackID, res.KeyID)
	return nil
}

// verifyPackReplay closes the evidence loop on every -verify run: pack
// the trail, verify the pack envelope, then replay each packed verdict
// against its packed snapshots and require zero divergence — the trail
// must reproduce the monitor's decisions, not merely describe them.
func verifyPackReplay(dep *loadgen.Deployment, sc loadgen.Scenario, out io.Writer) error {
	if dep == nil || dep.Audit == nil {
		return nil
	}
	if err := dep.Audit.Sync(); err != nil {
		return fmt.Errorf("verify: sync audit log: %w", err)
	}
	tmp, err := os.MkdirTemp("", "loadmon-pack-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	_, priv, err := evidence.GenerateKey(nil)
	if err != nil {
		return err
	}
	packPath := filepath.Join(tmp, "pack")
	if _, err := evidence.BuildPack(dep.Audit.Dir(), packPath, evidence.PackOptions{
		Key:       priv,
		Scenario:  sc.Name,
		SetDigest: dep.Sys.Contracts.Digest(),
		Tool:      "loadmon",
	}); err != nil {
		return fmt.Errorf("verify: build evidence pack: %w", err)
	}
	p, err := evidence.OpenPack(packPath)
	if err != nil {
		return fmt.Errorf("verify: open evidence pack: %w", err)
	}
	defer p.Close()
	rep, err := p.Verify(priv.Public().(ed25519.PublicKey))
	if err != nil {
		return fmt.Errorf("verify: verify evidence pack: %w", err)
	}
	if !rep.PackOK() {
		return fmt.Errorf("verify: evidence pack envelope failed: %s", strings.Join(rep.Problems, "; "))
	}
	recs, err := p.Records()
	if err != nil {
		return fmt.Errorf("verify: read packed records: %w", err)
	}
	replayer, err := monitor.NewReplayer(dep.Sys.Contracts)
	if err != nil {
		return fmt.Errorf("verify: build replayer: %w", err)
	}
	sum := replayer.ReplayAll(recs.Records)
	if !sum.OK() {
		msg := fmt.Sprintf("verify: evidence replay diverged on %d of %d packed verdicts", sum.Diverged, sum.Total)
		if len(sum.Failures) > 0 {
			f := sum.Failures[0]
			msg += fmt.Sprintf(" (first: seq %d %s: %s)", f.Seq, f.Trigger, f.Reason)
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Fprintf(out, "verify: evidence pack replays clean (%d/%d packed verdicts reproduced, %d skipped)\n",
		sum.Matched, sum.Total, sum.Skipped)
	return nil
}

// scrapeMetrics pulls an external monitor's /metrics endpoint after the
// run, prints its verdict counters, and fills the report's stage
// breakdown from the scraped latency histograms. The scraped values are
// cumulative over the monitor's lifetime, not diffed around the run.
func scrapeMetrics(addr string, r *loadgen.Report, out io.Writer) error {
	url := strings.TrimSuffix(addr, "/") + "/metrics"
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	samples, err := obs.ParseText(body)
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	verdicts := obs.CounterByLabel(samples, "cloudmon_verdicts_total", "outcome")
	outcomes := make([]string, 0, len(verdicts))
	for o, n := range verdicts {
		if n > 0 {
			outcomes = append(outcomes, o)
		}
	}
	sort.Strings(outcomes)
	fmt.Fprintf(out, "scraped %s:", url)
	for _, o := range outcomes {
		fmt.Fprintf(out, " %s=%.0f", o, verdicts[o])
	}
	fmt.Fprintln(out)
	if len(r.Stages) == 0 {
		stages := make(map[string]obs.StageSummary)
		for _, name := range obs.StageNames() {
			snap, ok := obs.HistogramFromSamples(samples, "cloudmon_stage_duration_seconds", "stage", name)
			if !ok || snap.Count == 0 {
				continue
			}
			stages[name] = obs.SummarizeHistogram(snap)
		}
		if len(stages) > 0 {
			r.Stages = stages
		}
	}
	return nil
}

// verifyObs cross-checks the run's three observability signals against
// each other: the report's verdict tallies (diffed monitor counters),
// the /metrics registry (scraped in process), and the audit trail on
// disk. All three must agree exactly — they claim to be views of the
// same requests.
func verifyObs(dep *loadgen.Deployment, r *loadgen.Report) error {
	if dep == nil {
		return nil
	}
	// 1. The metrics registry must agree with the monitor's cumulative
	// outcome counters (both read the same atomics; a drift means a
	// collector bug).
	samples, err := obs.ParseText([]byte(dep.Sys.Metrics.Render()))
	if err != nil {
		return fmt.Errorf("verify: render /metrics: %w", err)
	}
	scraped := obs.CounterByLabel(samples, "cloudmon_verdicts_total", "outcome")
	for outcome, n := range dep.Sys.Monitor.Outcomes() {
		if int(scraped[outcome.String()]) != n {
			return fmt.Errorf("verify: /metrics reports %s=%.0f, monitor counters say %d",
				outcome.String(), scraped[outcome.String()], n)
		}
	}
	if dep.Audit == nil {
		return nil
	}
	// 2. The audit diff must match the verdict diff on every non-OK
	// outcome: each violation produced exactly one audit record.
	for outcome, n := range r.Verdicts {
		if outcome == monitor.OK.String() {
			continue
		}
		if r.Audit[outcome] != n {
			return fmt.Errorf("verify: %d %s verdicts but %d audit records", n, outcome, r.Audit[outcome])
		}
	}
	for outcome, n := range r.Audit {
		if r.Verdicts[outcome] != n {
			return fmt.Errorf("verify: %d audit records for %s but %d verdicts", n, outcome, r.Verdicts[outcome])
		}
	}
	if err := dep.Audit.Sync(); err != nil {
		return fmt.Errorf("verify: sync audit log: %w", err)
	}
	// 3. The trail on disk must verify (contiguous chain, no torn lines)
	// and every Rejected record must carry at least one SecReq ID — the
	// trail's purpose is tracing violations back to requirements.
	res, err := obs.VerifyAuditDir(dep.Audit.Dir())
	if err != nil {
		return fmt.Errorf("verify: audit chain: %w", err)
	}
	if !res.OK() {
		return fmt.Errorf("verify: audit chain problems: %s", strings.Join(res.Problems, "; "))
	}
	read, err := obs.ReadAuditDir(dep.Audit.Dir())
	if err != nil {
		return fmt.Errorf("verify: read audit dir: %w", err)
	}
	for _, rec := range read.Records {
		if rec.Outcome == monitor.Rejected.String() && len(rec.SecReqs) == 0 {
			return fmt.Errorf("verify: audit record %d (%s %s) is Rejected but names no SecReq",
				rec.Seq, rec.Trigger, rec.Resource)
		}
	}
	return nil
}

// verifyReport asserts the structural verdict invariants a chaotic run
// must preserve: the monitor answered every request (no transport
// errors), every issued request produced exactly one verdict, and a
// fail-closed monitor never recorded an unverified forward — except the
// explicitly accounted async-queue sheds, which must match the shed
// counter one-for-one.
func verifyReport(sc loadgen.Scenario, r *loadgen.Report, policy monitor.FailPolicy, post monitor.PostMode, ap *loadgen.AsyncPostReport) error {
	if r.Errors > 0 {
		return fmt.Errorf("verify: %d transport errors — the monitor itself failed under faults", r.Errors)
	}
	if sc.Requests > 0 {
		sum := 0
		for _, n := range r.Verdicts {
			sum += n
		}
		if sum != sc.Requests {
			return fmt.Errorf("verify: verdict counters sum to %d, want %d (one per issued request)", sum, sc.Requests)
		}
	}
	if policy == monitor.FailClosed {
		unverified := r.Verdicts[monitor.Unverified.String()]
		// Fail-closed synchronous checks turn snapshot failures into
		// Error, never Unverified — so under async post every Unverified
		// verdict must be an accounted queue shed, and without async
		// there must be none at all.
		var shed int
		if post == monitor.PostAsync && ap != nil {
			shed = int(ap.Shed)
		}
		if unverified != shed {
			return fmt.Errorf("verify: fail-closed run recorded %d unverified verdicts, want %d (= async sheds)",
				unverified, shed)
		}
	}
	return nil
}

// verifyAsync asserts the deferred-verification invariants of a -post
// async run: every shed surfaced as exactly one shed-tagged Unverified
// audit record, every late record's detection lag is non-negative and
// every accepted capture landed one lag histogram sample; on a serial,
// fault-free run it then replays the identical scenario against a
// synchronous twin deployment and requires the verdict multisets to be
// identical — the async pipeline may delay verdicts, never change them.
func verifyAsync(sc loadgen.Scenario, r *loadgen.Report, dep *loadgen.Deployment, opts loadgen.DeployOptions, out io.Writer) error {
	if dep == nil || opts.Post != monitor.PostAsync {
		return nil
	}
	st := dep.Sys.Monitor.AsyncPostStats()
	if st.Pending != 0 {
		return fmt.Errorf("verify: async post queue still holds %d captures after drain", st.Pending)
	}
	if st.Lag.Count != st.Enqueued {
		return fmt.Errorf("verify: %d captures enqueued but %d lag samples observed", st.Enqueued, st.Lag.Count)
	}
	if dep.Audit != nil {
		if err := dep.Audit.Sync(); err != nil {
			return fmt.Errorf("verify: sync audit log: %w", err)
		}
		read, err := obs.ReadAuditDir(dep.Audit.Dir())
		if err != nil {
			return fmt.Errorf("verify: read audit dir: %w", err)
		}
		shedRecs, lateViol := 0, 0
		for _, rec := range read.Records {
			if rec.Shed {
				shedRecs++
				if rec.Outcome != monitor.Unverified.String() {
					return fmt.Errorf("verify: audit record %d is shed but %s, want %s",
						rec.Seq, rec.Outcome, monitor.Unverified)
				}
			}
			if rec.Late {
				if rec.LagNanos < 0 {
					return fmt.Errorf("verify: audit record %d has negative detection lag %d ns", rec.Seq, rec.LagNanos)
				}
				if rec.ReturnUnixNano <= 0 {
					return fmt.Errorf("verify: late audit record %d lacks a response-return timestamp", rec.Seq)
				}
				if rec.Outcome == monitor.ViolationPostcondition.String() {
					lateViol++
				}
			}
		}
		if shedRecs != int(st.Shed) {
			return fmt.Errorf("verify: monitor shed %d captures but the trail holds %d shed records", st.Shed, shedRecs)
		}
		if lateViol != int(st.LateViolations) {
			return fmt.Errorf("verify: monitor counted %d late violations but the trail holds %d", st.LateViolations, lateViol)
		}
	}
	// The sync twin needs a deterministic replay: one client, closed
	// loop, no fault injection, nothing shed (a shed abandons a post
	// phase the twin will evaluate, so the multisets could not match).
	if sc.Clients != 1 || sc.Rate != 0 || opts.Faults != nil || st.Shed != 0 {
		return nil
	}
	twin := opts
	twin.Post = monitor.PostSync
	twin.PostQueueCap, twin.PostWorkers, twin.PostBackpressure = 0, 0, 0
	twin.AuditDir = ""
	tdep, err := loadgen.Deploy(twin)
	if err != nil {
		return fmt.Errorf("verify: deploy sync twin: %w", err)
	}
	defer tdep.Close()
	trep, err := loadgen.Run(sc, tdep.Target)
	if err != nil {
		return fmt.Errorf("verify: run sync twin: %w", err)
	}
	for outcome, n := range r.Verdicts {
		if trep.Verdicts[outcome] != n {
			return fmt.Errorf("verify: async run saw %d %s verdicts, sync twin %d — deferred verification changed a verdict",
				n, outcome, trep.Verdicts[outcome])
		}
	}
	for outcome, n := range trep.Verdicts {
		if r.Verdicts[outcome] != n {
			return fmt.Errorf("verify: sync twin saw %d %s verdicts, async run %d — deferred verification changed a verdict",
				n, outcome, r.Verdicts[outcome])
		}
	}
	fmt.Fprintln(out, "verify: async verdict multiset ≡ synchronous twin")
	return nil
}

// verifyFetch asserts the run's fetch-economy invariants: the monitor
// never reads more of the cloud than the eager engine's worst case (two
// full snapshots per checked request), and a serial closed loop coalesces
// nothing — with one client there is never a concurrent identical read in
// flight to share.
func verifyFetch(sc loadgen.Scenario, r *loadgen.Report, dep *loadgen.Deployment) error {
	if dep == nil || r.Fetch == nil || r.Fetch.Requests == 0 {
		return nil
	}
	perRequest := 0
	for _, c := range dep.Sys.Contracts.Contracts {
		if n := 2 * len(c.StatePaths()); n > perRequest {
			perRequest = n
		}
	}
	bound := perRequest * r.Fetch.Requests
	if r.Fetch.CloudGets > bound {
		return fmt.Errorf("verify: %d cloud GETs for %d checked requests exceeds the eager bound %d (2 snapshots × %d paths each)",
			r.Fetch.CloudGets, r.Fetch.Requests, bound, perRequest/2)
	}
	if sc.Clients == 1 && sc.Rate == 0 && r.Fetch.Coalesced != 0 {
		return fmt.Errorf("verify: serial closed loop coalesced %d fetches (nothing can be in flight to share)",
			r.Fetch.Coalesced)
	}
	return nil
}

// externalTarget authenticates each role against the cloud and aims the
// workload at a running monitor.
func externalTarget(targetURL, cloudURL, project, creds string) (loadgen.Target, error) {
	if cloudURL == "" || project == "" {
		return loadgen.Target{}, fmt.Errorf("-target needs -cloud and -project for role authentication")
	}
	tokens := map[string]string{loadgen.RoleAnonymous: ""}
	for _, ent := range strings.Split(creds, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		role, userPass, ok := strings.Cut(ent, "=")
		if !ok {
			return loadgen.Target{}, fmt.Errorf("bad -credentials entry %q (want role=user:password)", ent)
		}
		user, pass, ok := strings.Cut(userPass, ":")
		if !ok {
			return loadgen.Target{}, fmt.Errorf("bad -credentials entry %q (want role=user:password)", ent)
		}
		auth := osclient.Client{BaseURL: cloudURL}
		tok, err := auth.Authenticate(user, pass, project)
		if err != nil {
			return loadgen.Target{}, fmt.Errorf("authenticate %s: %w", user, err)
		}
		tokens[role] = tok
	}
	return loadgen.Target{
		BaseURL:   targetURL,
		ProjectID: project,
		Tokens:    tokens,
	}, nil
}
