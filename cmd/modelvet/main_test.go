package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"cloudmon/internal/paper"
	"cloudmon/internal/xmi"
)

func TestExamplesAreClean(t *testing.T) {
	for _, name := range []string{"cinder", "nova", "cinder-secreq-1.4"} {
		var out bytes.Buffer
		failed, err := run([]string{"-example", name}, &out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if failed {
			t.Errorf("%s: analyzer reports errors on a shipped model:\n%s", name, out.String())
		}
		if !strings.Contains(out.String(), "0 error(s)") {
			t.Errorf("%s: summary line missing:\n%s", name, out.String())
		}
	}
}

func TestBrokenModelFailsFromXMI(t *testing.T) {
	// Corrupt the Cinder model: an unparsable invariant is an MV001
	// error, which must drive the non-zero exit path.
	m := paper.CinderModel()
	m.Behavioral.States[0].Invariant = "volumes->size( = 1"
	path := filepath.Join(t.TempDir(), "broken.xmi")
	if err := xmi.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	failed, err := run([]string{path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("broken model not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MV001") {
		t.Errorf("MV001 missing from output:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-json", "-example", "cinder"}, &out); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Diagnostics []json.RawMessage `json:"diagnostics"`
		Errors      int               `json:"errors"`
	}
	if err := json.Unmarshal(out.Bytes(), &payload); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if payload.Errors != 0 {
		t.Errorf("errors = %d, want 0", payload.Errors)
	}
}

func TestRequiredSecReqs(t *testing.T) {
	// SecReq 9.9 traces to nothing: MV402 error, non-zero exit.
	var out bytes.Buffer
	failed, err := run([]string{"-secreqs", "1.1,9.9", "-example", "cinder"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed || !strings.Contains(out.String(), "MV402") {
		t.Errorf("want MV402 failure for untraced tag, got:\n%s", out.String())
	}
}

func TestPassSelectionFlag(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-passes", "reachability", "-example", "cinder-secreq-1.4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MV10") {
		t.Errorf("reachability diagnostics missing on the sliced model:\n%s", out.String())
	}
	if strings.Contains(out.String(), "MV3") || strings.Contains(out.String(), "MV4") {
		t.Errorf("pass selection leaked other passes:\n%s", out.String())
	}
}

func TestListPasses(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-list-passes"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ocl-typecheck", "reachability", "guards", "interface", "secreq", "monitorability"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("pass %q missing from -list-passes output:\n%s", want, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if _, err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("no arguments: want usage error")
	}
	if _, err := run([]string{"-example", "mystery"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown example: want error")
	}
	if _, err := run([]string{"-example", "cinder", "extra.xmi"}, &bytes.Buffer{}); err == nil {
		t.Error("-example with positional arg: want error")
	}
}

func TestDeterministicOutput(t *testing.T) {
	var first string
	for i := 0; i < 5; i++ {
		var out bytes.Buffer
		if _, err := run([]string{"-example", "cinder-secreq-1.4"}, &out); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = out.String()
		} else if out.String() != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, out.String(), first)
		}
	}
}

func TestUnknownPassRejected(t *testing.T) {
	_, err := run([]string{"-passes", "bogus", "-example", "cinder"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), `unknown pass "bogus"`) {
		t.Errorf("err = %v, want unknown-pass error", err)
	}
}

func TestFactsOutput(t *testing.T) {
	var out bytes.Buffer
	failed, err := run([]string{"-facts", "-example", "cinder"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("cinder with -facts reports errors:\n%s", out.String())
	}
	s := out.String()
	// The pinned DELETE exclusion: once the size()=1 disjunct is true,
	// the size()>1 sibling is decided by its witness element alone.
	for _, needle := range []string{
		"DELETE(volume)",
		"witness project.volumes->size() > 1",
		"skippable once",
	} {
		if !strings.Contains(s, needle) {
			t.Errorf("-facts output missing %q:\n%s", needle, s)
		}
	}
	if strings.Contains(s, "CHECK FAILED") {
		t.Errorf("facts machine check failed:\n%s", s)
	}
}

func TestCompiledOutput(t *testing.T) {
	var out bytes.Buffer
	failed, err := run([]string{"-compiled", "-example", "cinder"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("cinder with -compiled reports errors:\n%s", out.String())
	}
	s := out.String()
	// The DELETE artifact: one program per disjunct and consequent, the
	// slot table the programs resolve paths against.
	for _, needle := range []string{
		"DELETE(volume)",
		"programs: 3 pre, 3 post",
		"[0] project.id",
		"user.id.groups",
	} {
		if !strings.Contains(s, needle) {
			t.Errorf("-compiled output missing %q:\n%s", needle, s)
		}
	}
}
