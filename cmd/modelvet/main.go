// Command modelvet statically analyzes design models before any monitor
// code is generated. It runs the multi-pass analyzer of internal/analysis
// over a model read from XMI (the same input uml2go consumes) or over one
// of the bundled paper models, and prints one diagnostic per line:
//
//	modelvet diagrams.xmi
//	modelvet -example cinder
//	modelvet -json -secreqs 1.1,1.2 diagrams.xmi
//
// Flags:
//
//	-json           render the report as JSON instead of text
//	-secreqs TAGS   comma-separated security-requirement tags that must
//	                trace to at least one transition (MV402)
//	-passes NAMES   comma-separated pass names to run (default: all)
//	-example NAME   analyze a bundled model instead of an XMI file:
//	                cinder, nova, or cinder-secreq-1.4
//	-list-passes    print the registered passes and their codes, then exit
//	-facts          additionally print the compile-time clause facts the
//	                symbolic pass proved per contract (static disjuncts,
//	                witness exclusions, dead paths), after machine-checking
//	                each facts artifact
//	-compiled       additionally print each contract's compiled artifact
//	                (state-path slot table, program counts, iterator
//	                registers) — what the monitor's default engine executes
//
// Exit status: 0 when the model is clean or carries only warnings and
// infos, 1 when any error-severity diagnostic is reported, 2 on usage or
// input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cloudmon/internal/analysis"
	"cloudmon/internal/contract"
	"cloudmon/internal/paper"
	"cloudmon/internal/slice"
	"cloudmon/internal/uml"
	"cloudmon/internal/xmi"
)

func main() {
	failed, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelvet:", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// run executes the analysis and reports whether it found errors.
func run(args []string, out io.Writer) (failed bool, err error) {
	fs := flag.NewFlagSet("modelvet", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "render the report as JSON")
	secreqs := fs.String("secreqs", "", "comma-separated required security-requirement tags")
	passes := fs.String("passes", "", "comma-separated pass names to run (default: all)")
	example := fs.String("example", "", "analyze a bundled model: cinder, nova, cinder-secreq-1.4")
	listPasses := fs.Bool("list-passes", false, "print the registered passes and exit")
	facts := fs.Bool("facts", false, "print the compile-time clause facts per contract")
	compiled := fs.Bool("compiled", false, "print each contract's compiled artifact summary")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *listPasses {
		for _, p := range analysis.Passes() {
			fmt.Fprintf(out, "%-16s %s  [%s]\n", p.Name, p.Doc, strings.Join(p.Codes, " "))
		}
		return false, nil
	}

	model, err := loadModel(fs, *example)
	if err != nil {
		return false, err
	}

	cfg := analysis.Config{
		RequiredSecReqs: splitList(*secreqs),
		Passes:          splitList(*passes),
	}
	// A typo'd pass name would silently select nothing and report the
	// model clean — reject it instead.
	registered := make(map[string]bool)
	for _, p := range analysis.Passes() {
		registered[p.Name] = true
	}
	for _, name := range cfg.Passes {
		if !registered[name] {
			return false, fmt.Errorf("unknown pass %q (see -list-passes)", name)
		}
	}
	report := analysis.Analyze(model, cfg)

	if *asJSON {
		s, err := report.RenderJSON()
		if err != nil {
			return false, err
		}
		fmt.Fprint(out, s)
	} else {
		fmt.Fprint(out, report.Render())
	}
	failed = report.HasErrors()

	if *facts || *compiled {
		set, err := contract.Generate(model)
		if err != nil {
			// The report above already explains why the model cannot
			// generate; there is nothing to print.
			fmt.Fprintf(out, "contracts not generated: %v\n", err)
			return true, nil
		}
		if *facts {
			// Machine-check every artifact before presenting it as proven.
			for _, c := range set.Contracts {
				if f := c.Plan().Facts; f != nil {
					if err := f.Check(c); err != nil {
						fmt.Fprintf(out, "facts: %s: CHECK FAILED: %v\n", c.Trigger, err)
						failed = true
					}
				}
			}
			fmt.Fprint(out, contract.RenderFacts(set))
		}
		if *compiled {
			fmt.Fprint(out, contract.RenderCompiled(set))
		}
	}
	return failed, nil
}

// loadModel resolves the -example shorthand or reads the XMI argument.
func loadModel(fs *flag.FlagSet, example string) (*uml.Model, error) {
	if example != "" {
		if fs.NArg() != 0 {
			return nil, fmt.Errorf("-example and an XMI path are mutually exclusive")
		}
		switch example {
		case "cinder":
			return paper.CinderModel(), nil
		case "nova":
			return paper.NovaModel(), nil
		case "cinder-secreq-1.4":
			return slice.Model(paper.CinderModel(), slice.BySecReqs("1.4"))
		}
		return nil, fmt.Errorf("unknown example %q (want cinder, nova, or cinder-secreq-1.4)", example)
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("usage: modelvet [flags] DiagramsFile.xmi")
	}
	return xmi.ReadFile(fs.Arg(0))
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}
