// Command mutantlab reproduces the paper's validation experiments:
//
//	mutantlab            run the full mutant campaign and print the kill matrix
//	mutantlab -paper     run only the paper's three mutants (Section VI.D)
//	mutantlab -compiler  run the OCL-compiler mutation campaign (seeded
//	                     semantic faults vs the tree-walking reference)
//	mutantlab -table1    print Table I (security requirements) as generated
//	mutantlab -listing1  print the DELETE(volume) contract (Listing 1)
//	mutantlab -coverage  print SecReq coverage of the standard request matrix
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"cloudmon/internal/contract"
	"cloudmon/internal/mbt"
	"cloudmon/internal/monitor"
	"cloudmon/internal/mutation"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mutantlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mutantlab", flag.ContinueOnError)
	paperOnly := fs.Bool("paper", false, "run only the paper's three mutants")
	ablation := fs.Bool("ablation", false, "also run the pre-only monitor ablation and compare kill rates")
	mbtSuite := fs.Bool("mbt", false, "run the model-based-testing suite generated from the behavioral model and exit")
	novaCampaign := fs.Bool("nova", false, "run the compute-service (Nova model) mutant campaign and exit")
	compiler := fs.Bool("compiler", false, "run the OCL-compiler mutation campaign and exit")
	jsonOut := fs.Bool("json", false, "emit the kill matrix as JSON instead of a table")
	table1 := fs.Bool("table1", false, "print Table I and exit")
	listing1 := fs.Bool("listing1", false, "print the DELETE(volume) contract and exit")
	coverage := fs.Bool("coverage", false, "print SecReq coverage of the request matrix and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *table1 {
		printTableI()
		return nil
	}
	if *listing1 {
		return printListing1()
	}
	if *coverage {
		return printCoverage()
	}
	if *mbtSuite {
		return runMBTSuite()
	}
	if *compiler {
		return runCompilerCampaign(*jsonOut)
	}
	emit := func(report *mutation.CampaignReport) error {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(report)
		}
		report.Format(os.Stdout)
		return nil
	}
	if *novaCampaign {
		if !*jsonOut {
			fmt.Println("running compute-service (Nova model) mutant campaign")
			fmt.Println()
		}
		report, err := mutation.RunNovaCampaign(mutation.NovaCatalogue())
		if err != nil {
			return err
		}
		return emit(report)
	}

	mutants := mutation.Catalogue()
	if *paperOnly {
		mutants = mutation.PaperMutants()
	}
	if !*jsonOut {
		fmt.Printf("running mutation campaign: %d mutants, fresh cloud + monitor per run\n\n", len(mutants))
	}
	report, err := mutation.RunCampaign(mutants)
	if err != nil {
		return err
	}
	if err := emit(report); err != nil {
		return err
	}
	if *ablation {
		fmt.Println("\n--- ablation: pre-only monitor (no post-condition checks) ---")
		pre, err := mutation.RunCampaignWithOptions(mutants, mutation.LabOptions{
			Level: monitor.CheckPreOnly,
		})
		if err != nil {
			return err
		}
		pre.Format(os.Stdout)
		fmt.Printf("\nablation delta: full kills %d/%d, pre-only kills %d/%d — "+
			"the difference is exactly the lost-effect mutants only post-conditions can see\n",
			report.Killed(), len(report.Runs), pre.Killed(), len(pre.Runs))
	}
	return nil
}

// runCompilerCampaign runs the seeded-fault campaign against the compiled
// OCL engine: every clause of the Cinder contract set plus the synthetic
// differential corpus, each mutant judged against the tree walk.
func runCompilerCampaign(jsonOut bool) error {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		return err
	}
	report, err := contract.RunCompilerCampaign(set)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Printf("running compiler mutation campaign: %d seeded faults over the Cinder contract set\n\n",
		len(contract.CompilerMutants()))
	report.Format(os.Stdout)
	return nil
}

// printTableI regenerates the paper's Table I from the fixture.
func printTableI() {
	fmt.Println("TABLE I: SECURITY REQUIREMENTS FOR CINDER API (EXCERPT)")
	fmt.Printf("%-10s %-8s %-8s %-8s %s\n", "Resource", "SecReq", "Request", "Role", "UserGroup")
	for _, row := range paper.TableI() {
		roles := make([]string, 0, len(row.Roles))
		for role := range row.Roles {
			roles = append(roles, role)
		}
		sort.Strings(roles)
		first := true
		for _, role := range roles {
			if first {
				fmt.Printf("%-10s %-8s %-8s %-8s %s\n",
					row.Resource, row.SecReq, row.Request, role, row.Roles[role])
				first = false
			} else {
				fmt.Printf("%-10s %-8s %-8s %-8s %s\n", "", "", "", role, row.Roles[role])
			}
		}
	}
}

// printListing1 regenerates the paper's Listing 1.
func printListing1() error {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		return err
	}
	c, ok := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	if !ok {
		return fmt.Errorf("no DELETE(volume) contract")
	}
	fmt.Print(contract.RenderListing(c, contract.StylePaper))
	return nil
}

// runMBTSuite generates a test suite from the behavioral model and runs it
// against a clean deployment, using the monitor as the oracle.
func runMBTSuite() error {
	suite, err := mbt.Generate(paper.CinderBehavioralModel(),
		[]string{paper.RoleAdmin, paper.RoleMember, paper.RoleUser})
	if err != nil {
		return err
	}
	fmt.Printf("generated %d cases from the behavioral model\n\n", len(suite.Cases))
	ex := mutation.NewModelExecutor(nil)
	res, err := mbt.Run(suite, ex)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	fmt.Printf("monitor violations during the run: %d (expected 0 on a clean cloud)\n",
		ex.Violations())
	return nil
}

// printCoverage runs the standard request matrix on a clean deployment and
// prints per-SecReq hit counts.
func printCoverage() error {
	lab, err := mutation.NewLab()
	if err != nil {
		return err
	}
	requests := lab.RunMatrix()
	cov := lab.Sys.Monitor.Coverage()
	reqs := make([]string, 0, len(cov))
	for s := range cov {
		reqs = append(reqs, s)
	}
	sort.Strings(reqs)
	fmt.Printf("request matrix: %d requests, %d violations (expected 0)\n",
		requests, len(lab.Sys.Monitor.Violations()))
	fmt.Println("security-requirement coverage:")
	for _, s := range reqs {
		fmt.Printf("  SecReq %-5s exercised %d times\n", s, cov[s])
	}
	return nil
}
