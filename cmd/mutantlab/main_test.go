package main

import "testing"

func TestArtifactModes(t *testing.T) {
	for _, flag := range []string{"-table1", "-listing1", "-coverage"} {
		if err := run([]string{flag}); err != nil {
			t.Errorf("run(%s): %v", flag, err)
		}
	}
}

func TestPaperCampaign(t *testing.T) {
	if err := run([]string{"-paper"}); err != nil {
		t.Fatalf("run(-paper): %v", err)
	}
}

func TestPaperCampaignWithAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	if err := run([]string{"-paper", "-ablation"}); err != nil {
		t.Fatalf("run(-paper -ablation): %v", err)
	}
}

func TestNovaCampaignFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	if err := run([]string{"-nova"}); err != nil {
		t.Fatalf("run(-nova): %v", err)
	}
}

func TestMBTFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("suite in -short mode")
	}
	if err := run([]string{"-mbt"}); err != nil {
		t.Fatalf("run(-mbt): %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
