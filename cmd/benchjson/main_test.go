package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: cloudmon
cpu: Test CPU @ 2.00GHz
BenchmarkAsyncPost/create-delete/sync-8        	      25	  50213973 ns/op	         3.000 p99-lag-ms	         0 shed
BenchmarkAsyncPost/create-delete/async-8       	      25	  12087554 ns/op	        41.00 p99-lag-ms	         0 shed
BenchmarkCompiledEval/pre-8                    	 1203394	       996.1 ns/op	     320 B/op	       6 allocs/op
PASS
ok  	cloudmon	4.812s
`

func TestParseBenchStream(t *testing.T) {
	var echo strings.Builder
	res, err := parse(strings.NewReader(sampleBench), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoOS != "linux" || res.GoArch != "amd64" || res.CPU != "Test CPU @ 2.00GHz" {
		t.Errorf("header: %+v", res)
	}
	if len(res.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(res.Benchmarks))
	}
	b := res.Benchmarks[0]
	if b.Name != "BenchmarkAsyncPost/create-delete/sync-8" || b.Iterations != 25 {
		t.Errorf("first result: %+v", b)
	}
	if b.Metrics["ns/op"] != 50213973 || b.Metrics["p99-lag-ms"] != 3 || b.Metrics["shed"] != 0 {
		t.Errorf("first metrics: %v", b.Metrics)
	}
	if m := res.Benchmarks[2].Metrics; m["allocs/op"] != 6 || m["B/op"] != 320 {
		t.Errorf("alloc metrics: %v", m)
	}
	// The stream is echoed verbatim so the human still sees the run.
	if echo.String() != sampleBench {
		t.Errorf("echo mangled the stream:\n%s", echo.String())
	}
}

func TestRunWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := run([]string{"-out", out}, strings.NewReader(sampleBench), &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var got Output
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 3 {
		t.Fatalf("file holds %d benchmarks, want 3", len(got.Benchmarks))
	}
	if !strings.Contains(sb.String(), "3 results -> "+out) {
		t.Errorf("summary line missing:\n%s", sb.String())
	}
	// Missing -out and an empty stream are explicit errors.
	if err := run(nil, strings.NewReader(sampleBench), &sb); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-out", out}, strings.NewReader("PASS\n"), &sb); err == nil {
		t.Error("stream without benchmarks accepted")
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	cloudmon	4.812s",
		"Benchmark only",
		"BenchmarkX notanumber 12 ns/op",
		"BenchmarkX 25 12", // dangling value without a unit
		"BenchmarkX 25 twelve ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed", line)
		}
	}
}
