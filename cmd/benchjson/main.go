// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file so benchmark trajectories can be tracked
// across commits. It reads the benchmark stream on stdin, echoes it
// unchanged to stdout (the human still sees the run), and writes the
// parsed results to -out:
//
//	go test -run XXX -bench BenchmarkAsyncPost -benchtime 25x . \
//	    | benchjson -out BENCH_async.json
//
// Every value/unit pair on a benchmark line is kept — ns/op, B/op,
// allocs/op and custom b.ReportMetric units (req/s, p99-lag-ms, ...)
// alike.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix (e.g. "BenchmarkAsyncPost/create-delete/sync-8").
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every pair on the line.
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the file benchjson writes.
type Output struct {
	// GoOS/GoArch/CPU describe the machine, copied from the stream's
	// header lines when present.
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks are the parsed results in stream order.
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("out", "", "JSON file to write (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("-out is required")
	}
	res, err := parse(in, out)
	if err != nil {
		return err
	}
	if len(res.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "benchjson: %d results -> %s\n", len(res.Benchmarks), *outPath)
	return nil
}

// parse scans the benchmark stream, echoing every line to echo and
// collecting the parsed results.
func parse(in io.Reader, echo io.Writer) (*Output, error) {
	res := &Output{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos:"):
			res.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			res.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			res.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		r, ok := parseLine(line)
		if ok {
			res.Benchmarks = append(res.Benchmarks, r)
		}
	}
	return res, sc.Err()
}

// parseLine parses one "BenchmarkName  N  v1 unit1  v2 unit2 ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: n, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[rest[i+1]] = v
	}
	return r, true
}
