// Command cloudsim runs the simulated OpenStack private cloud (keystone +
// cinder + nova) and seeds it with the paper's example deployment: project
// myProject, three user groups holding the Table-I roles, and a volume
// quota.
//
//	cloudsim -addr :8776 -quota 10
//
// With -faults the cloud is wrapped in the fault-injection middleware, so
// a monitor (and its retry/breaker/fail-policy stack) can be exercised
// against a misbehaving cloud over real sockets:
//
//	cloudsim -addr :8776 -faults chaos.json
//
// Credentials printed at startup can be used with cURL exactly as in the
// paper's workflow, e.g.:
//
//	curl -X DELETE -H "X-Auth-Token: $TOK" \
//	    http://127.0.0.1:8776/volume/v3/$PROJECT/volumes/$VOL
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"

	"cloudmon/internal/faults"
	"cloudmon/internal/obs"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/paper"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudsim:", err)
		os.Exit(1)
	}
}

// buildCloud provisions the example deployment with the given volume
// quota and returns the cloud plus the seeded identifiers.
func buildCloud(quota int) (*openstack.Cloud, openstack.SeedResult) {
	cloud := openstack.New(openstack.Config{})
	res := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		Quota:       cinder.QuotaSet{Volumes: quota, Gigabytes: 100 * quota},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw-alice", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw-bob", Group: paper.GroupServiceArchitect},
			{Name: "carol", Password: "pw-carol", Group: paper.GroupBusinessAnalyst},
			{Name: "cm-svc", Password: "pw-svc", Group: paper.GroupProjAdministrator},
		},
	})
	return cloud, res
}

func run(args []string) error {
	fs := flag.NewFlagSet("cloudsim", flag.ContinueOnError)
	addr := fs.String("addr", ":8776", "listen address")
	quota := fs.Int("quota", 10, "volume quota for the seeded project")
	faultsPath := fs.String("faults", "", "fault-injection profile (JSON, see internal/faults)")
	metricsAddr := fs.String("metrics-addr", "", "optional listen address for the Prometheus-text /metrics endpoint")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cloud, res := buildCloud(*quota)
	var handler http.Handler = cloud
	var injector *faults.Injector
	if *faultsPath != "" {
		profile, err := faults.LoadProfile(*faultsPath)
		if err != nil {
			return err
		}
		injector = faults.NewInjector(profile)
		handler = injector.Middleware(cloud)
		fmt.Printf("fault injection enabled: %d rules, seed %d (%s)\n",
			len(profile.Rules), profile.Seed, *faultsPath)
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = &obs.Registry{}
		hm := obs.NewHTTPMetrics()
		handler = hm.Wrap(handler)
		hm.Register(reg, "cloudsim")
		if injector != nil {
			reg.Collect(func(w *obs.MetricsWriter) {
				counts := injector.Counts()
				kinds := make([]string, 0, len(counts))
				for k := range counts {
					kinds = append(kinds, k)
				}
				sort.Strings(kinds)
				for _, k := range kinds {
					w.Counter("cloudsim_injected_faults_total",
						"Fault-injection rules fired, by kind.",
						float64(counts[k]), obs.L("kind", k))
				}
			})
		}
	}

	fmt.Printf("simulated OpenStack cloud on %s\n", *addr)
	fmt.Printf("  project myProject: %s (volume quota %d)\n", res.ProjectID, *quota)
	fmt.Println("  users (password = pw-<name>):")
	fmt.Println("    alice  proj_administrator -> role admin")
	fmt.Println("    bob    service_architect  -> role member")
	fmt.Println("    carol  business_analyst   -> role user")
	fmt.Println("    cm-svc proj_administrator -> monitor service account")
	fmt.Println("  services: /identity/v3, /volume/v3, /compute/v2.1")

	if reg != nil {
		fmt.Printf("  metrics on %s/metrics\n", *metricsAddr)
		errCh := make(chan error, 1)
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/metrics", reg.Handler())
			errCh <- http.ListenAndServe(*metricsAddr, mux)
		}()
		go func() {
			errCh <- http.ListenAndServe(*addr, handler)
		}()
		return <-errCh
	}
	return http.ListenAndServe(*addr, handler)
}
