package main

import (
	"net/http/httptest"
	"testing"

	"cloudmon/internal/osclient"
)

func TestBuildCloudSeedsExampleDeployment(t *testing.T) {
	cloud, res := buildCloud(7)
	if res.ProjectID == "" {
		t.Fatal("no project seeded")
	}
	if len(res.UserIDs) != 4 {
		t.Errorf("users = %v", res.UserIDs)
	}
	srv := httptest.NewServer(cloud)
	defer srv.Close()

	// Each seeded user can authenticate and holds the expected role.
	for user, role := range map[string]string{
		"alice": "admin", "bob": "member", "carol": "user",
	} {
		c := osclient.New(srv.URL)
		if _, err := c.Authenticate(user, "pw-"+user, res.ProjectID); err != nil {
			t.Fatalf("authenticate %s: %v", user, err)
		}
		tok, err := c.ValidateToken(c.Token)
		if err != nil {
			t.Fatal(err)
		}
		if len(tok.Roles) != 1 || tok.Roles[0] != role {
			t.Errorf("%s roles = %v, want [%s]", user, tok.Roles, role)
		}
	}
	// The quota flag is applied.
	admin := osclient.New(srv.URL)
	if _, err := admin.Authenticate("alice", "pw-alice", res.ProjectID); err != nil {
		t.Fatal(err)
	}
	q, _, err := admin.GetQuota(res.ProjectID)
	if err != nil || q.Volumes != 7 {
		t.Errorf("quota = %+v, %v", q, err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
