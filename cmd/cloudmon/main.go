// Command cloudmon runs the cloud monitor proxy against a private cloud,
// generating contracts from an XMI model file (or the bundled Cinder
// example when -xmi is omitted):
//
//	cloudmon -cloud http://127.0.0.1:8776 -project <id> -addr :8000 \
//	         -xmi diagrams.xmi -mode enforce
//
// The monitor authenticates to the cloud with a service account
// (-svc-user/-svc-pass) and exposes the model's URI space, e.g.
// /projects/{project_id}/volumes/{volume_id}.
//
// In a horizontally sharded fleet each instance runs with -instance
// (stamping its audit records, labelling its metrics and serving the
// invalidation bus on the inspect listener), and one process runs as the
// routing front tier:
//
//	cloudmon -fleet-front 'm-00=http://h0:8000|http://h0:8001,m-01=http://h1:8000|http://h1:8001' \
//	         -addr :9000 -metrics-addr :9002
//
// The front routes each request to the instance owning its project under
// rendezvous hashing and serves the federated /metrics of the whole fleet.
//
// On SIGTERM/SIGINT the monitor drains in order: the proxy listener stops
// accepting, deferred post-verifications finish, the audit trail is
// flushed — and only then do the inspect and metrics listeners close, so
// a final scrape still sees the complete counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/core"
	"cloudmon/internal/fleet"
	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/paper"
	"cloudmon/internal/slice"
	"cloudmon/internal/uml"
	"cloudmon/internal/xmi"
)

// splitCSV splits a comma-separated flag value into trimmed parts.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudmon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cloudmon", flag.ContinueOnError)
	addr := fs.String("addr", ":8000", "listen address")
	cloudURL := fs.String("cloud", "http://127.0.0.1:8776", "private cloud base URL")
	xmiPath := fs.String("xmi", "", "XMI model file (default: bundled Cinder example)")
	modeName := fs.String("mode", "enforce", "monitor mode: enforce | observe")
	inspectAddr := fs.String("inspect-addr", "", "optional listen address for the verdict/coverage API (e.g. 127.0.0.1:8001)")
	levelName := fs.String("level", "full", "contract check level: full | pre-only")
	evalName := fs.String("eval", "compiled", "contract evaluation engine: compiled (closure-chain programs) | lazy (demand-driven tree walk) | eager (whole-contract snapshots)")
	noFacts := fs.Bool("no-facts", false, "disable compile-time fact pruning in the lazy engine (A/B baseline)")
	postName := fs.String("post", "sync", "post-verification mode: sync | async (defer post-checks to a bounded worker queue)")
	postQueue := fs.Int("post-queue", 0, "async post queue capacity (0 = default)")
	postWorkers := fs.Int("post-workers", 0, "async post worker pool size (0 = default)")
	backpressureName := fs.String("post-backpressure", "block", "saturated async queue policy: block | shed")
	logFile := fs.String("log-file", "", "append verdicts as NDJSON to this file")
	metricsAddr := fs.String("metrics-addr", "", "optional listen address for the Prometheus-text /metrics endpoint (e.g. 127.0.0.1:8002)")
	auditDir := fs.String("audit-dir", "", "directory for the append-only audit trail (violations and Unverified outcomes)")
	auditMaxBytes := fs.Int64("audit-max-bytes", 0, "rotate audit segments at this size (0 = 8 MiB default)")
	parallelSnapshots := fs.Bool("parallel-snapshots", false,
		"resolve state snapshots concurrently (recommended when the cloud is across a network)")
	secReqs := fs.String("secreqs", "", "comma-separated SecReq tags to slice the model to (e.g. 1.3,1.4)")
	methods := fs.String("methods", "", "comma-separated HTTP methods to slice the model to (e.g. DELETE,PUT)")
	svcUser := fs.String("svc-user", "cm-svc", "monitor service-account user")
	svcPass := fs.String("svc-pass", "pw-svc", "monitor service-account password")
	project := fs.String("project", "", "project the service account is scoped to (required)")
	printContracts := fs.Bool("contracts", false, "print generated contracts at startup")
	instance := fs.String("instance", "",
		"fleet instance id: stamps audit records, labels every metric with instance=<id>, and serves the invalidation bus and /metrics on the inspect listener")
	frontSpec := fs.String("fleet-front", "",
		"run as a fleet front instead of a monitor: comma-separated id=proxyURL[|inspectURL] members, routed by rendezvous hash on the project")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget on SIGTERM/SIGINT")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *frontSpec != "" {
		return runFront(*frontSpec, *addr, *metricsAddr, *shutdownTimeout)
	}
	if *project == "" {
		return fmt.Errorf("-project is required (the seeded project id; cloudsim prints it)")
	}

	var (
		model *uml.Model
		err   error
	)
	if *xmiPath != "" {
		model, err = xmi.ReadFile(*xmiPath)
		if err != nil {
			return err
		}
	} else {
		model = paper.CinderModel()
	}

	var mode monitor.Mode
	switch *modeName {
	case "enforce":
		mode = monitor.Enforce
	case "observe":
		mode = monitor.Observe
	default:
		return fmt.Errorf("unknown mode %q (want enforce or observe)", *modeName)
	}
	var level monitor.CheckLevel
	switch *levelName {
	case "full":
		level = monitor.CheckFull
	case "pre-only":
		level = monitor.CheckPreOnly
	default:
		return fmt.Errorf("unknown level %q (want full or pre-only)", *levelName)
	}
	eval, err := monitor.ParseEvalMode(*evalName)
	if err != nil {
		return err
	}
	postMode, err := monitor.ParsePostMode(*postName)
	if err != nil {
		return err
	}
	backpressure, err := monitor.ParseBackpressure(*backpressureName)
	if err != nil {
		return err
	}

	// Optional model slicing (paper §VI.B future work): monitor only the
	// selected scenarios.
	var preds []slice.Predicate
	if *secReqs != "" {
		preds = append(preds, slice.BySecReqs(splitCSV(*secReqs)...))
	}
	if *methods != "" {
		var ms []uml.HTTPMethod
		for _, m := range splitCSV(*methods) {
			ms = append(ms, uml.HTTPMethod(strings.ToUpper(m)))
		}
		preds = append(preds, slice.ByMethods(ms...))
	}
	if len(preds) > 0 {
		model, err = slice.Model(model, slice.Any(preds...))
		if err != nil {
			return err
		}
		fmt.Printf("sliced model: %d transitions remain\n", len(model.Behavioral.Transitions))
	}

	var onVerdict func(monitor.Verdict)
	if *logFile != "" {
		f, err := os.OpenFile(*logFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open log file: %w", err)
		}
		defer f.Close()
		aw := monitor.NewAuditWriter(f)
		onVerdict = aw.Record
	}

	var audit *obs.AuditLog
	if *auditDir != "" {
		audit, err = obs.OpenAuditLog(*auditDir, *auditMaxBytes)
		if err != nil {
			return fmt.Errorf("open audit log: %w", err)
		}
		defer audit.Close()
	}

	sys, err := core.Build(core.Options{
		Model:    model,
		CloudURL: *cloudURL,
		ServiceAccount: osbinding.ServiceAccount{
			User: *svcUser, Password: *svcPass, ProjectID: *project,
		},
		InstanceID:        *instance,
		Mode:              mode,
		Level:             level,
		Eval:              eval,
		NoFacts:           *noFacts,
		Post:              postMode,
		PostQueueCap:      *postQueue,
		PostWorkers:       *postWorkers,
		PostBackpressure:  backpressure,
		OnVerdict:         onVerdict,
		ParallelSnapshots: *parallelSnapshots,
		Audit:             audit,
	})
	if err != nil {
		return err
	}
	// Drain deferred post-checks before the audit log closes.
	defer sys.Monitor.Close()

	fmt.Printf("cloud monitor (%s mode, %s eval) on %s, proxying %s\n", mode, eval, *addr, *cloudURL)
	if *instance != "" {
		fmt.Printf("  fleet instance %s (audit stamp, metric label, invalidation bus on the inspect listener)\n", *instance)
	}
	fmt.Printf("  %d contracts over model %q; security requirements %v\n",
		len(sys.Contracts.Contracts), model.Resource.Name, sys.Contracts.SecReqs())
	for _, r := range sys.Routes {
		fmt.Printf("  %-6s %-45s -> %s\n", r.Trigger.Method, r.Pattern, r.Backend)
	}
	if *printContracts {
		fmt.Println()
		fmt.Print(contract.RenderSet(sys.Contracts, contract.StyleConjunction))
	}
	if audit != nil {
		fmt.Printf("  audit trail in %s\n", audit.Dir())
	}
	// Observability listeners. When -instance is set the inspect mux also
	// serves the fleet invalidation bus, so peers can bump this instance's
	// pre-state cache generations after a resize moves a project here, and
	// /metrics, so a remote front can federate this instance through the
	// single inspect URL in its -fleet-front member spec.
	var aux []*http.Server
	if *inspectAddr != "" {
		fmt.Printf("  inspect API on %s (/log /violations /coverage /outcomes /contracts /stages)\n", *inspectAddr)
		handler := sys.Monitor.InspectHandler()
		if *instance != "" {
			mux := http.NewServeMux()
			mux.Handle(fleet.InvalidatePath, fleet.InvalidateHandler(sys.Monitor))
			mux.Handle("/metrics", sys.Metrics.Handler())
			mux.Handle("/", handler)
			handler = mux
		}
		aux = append(aux, &http.Server{Addr: *inspectAddr, Handler: handler})
	}
	if *metricsAddr != "" {
		fmt.Printf("  metrics on %s/metrics\n", *metricsAddr)
		mux := http.NewServeMux()
		mux.Handle("/metrics", sys.Metrics.Handler())
		aux = append(aux, &http.Server{Addr: *metricsAddr, Handler: mux})
	}
	proxy := &http.Server{Addr: *addr, Handler: sys.Monitor}

	err = serveUntilSignal(proxy, aux, *shutdownTimeout, func(ctx context.Context) {
		// Shutdown order matters: the proxy has stopped accepting and its
		// in-flight requests have finished; now land every deferred
		// verdict and flush the trail while the metrics and inspect
		// listeners are still up, so a final scrape sees the complete run.
		sys.Monitor.Close()
		if audit != nil {
			if serr := audit.Sync(); serr != nil {
				fmt.Fprintln(os.Stderr, "cloudmon: flush audit trail:", serr)
			}
		}
	})
	return err
}

// serveUntilSignal runs the proxy and auxiliary listeners until one fails
// or SIGTERM/SIGINT arrives, then drains gracefully: proxy first, the
// drain hook second, observability listeners last.
func serveUntilSignal(proxy *http.Server, aux []*http.Server, timeout time.Duration, drain func(context.Context)) error {
	errCh := make(chan error, len(aux)+1)
	serve := func(srv *http.Server) {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}
	for _, srv := range aux {
		go serve(srv)
	}
	go serve(proxy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("received %s: draining (proxy -> deferred verdicts -> audit flush -> observability)\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := proxy.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "cloudmon: proxy shutdown:", err)
		}
		if drain != nil {
			drain(ctx)
		}
		for _, srv := range aux {
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "cloudmon: listener shutdown:", err)
			}
		}
		return nil
	}
}

// runFront assembles the fleet front tier from the member spec and serves
// it: requests route to the instance owning their project, /metrics on
// the metrics listener serves the federated exposition of the whole
// fleet plus the front's own routing counters.
func runFront(spec, addr, metricsAddr string, timeout time.Duration) error {
	members, err := parseFleetMembers(spec)
	if err != nil {
		return err
	}
	front, err := fleet.NewFront(members)
	if err != nil {
		return err
	}
	reg := &obs.Registry{}
	front.RegisterMetrics(reg)

	fmt.Printf("fleet front on %s over %d instances (rendezvous-hash routing by project)\n", addr, len(members))
	for _, m := range members {
		fmt.Printf("  %s\n", m.ID)
	}
	var aux []*http.Server
	if metricsAddr != "" {
		fmt.Printf("  federated metrics on %s/metrics\n", metricsAddr)
		mux := http.NewServeMux()
		mux.Handle("/metrics", front.FederationHandler(reg))
		aux = append(aux, &http.Server{Addr: metricsAddr, Handler: mux})
	}
	proxy := &http.Server{Addr: addr, Handler: front}
	return serveUntilSignal(proxy, aux, timeout, nil)
}

// parseFleetMembers parses "id=proxyURL[|inspectURL]" entries.
func parseFleetMembers(spec string) ([]*fleet.Member, error) {
	var members []*fleet.Member
	for _, ent := range splitCSV(spec) {
		id, urls, ok := strings.Cut(ent, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("bad -fleet-front entry %q (want id=proxyURL[|inspectURL])", ent)
		}
		proxyURL, inspectURL, _ := strings.Cut(urls, "|")
		if proxyURL == "" {
			return nil, fmt.Errorf("bad -fleet-front entry %q: empty proxy URL", ent)
		}
		m, err := fleet.NewRemoteMember(id, proxyURL, inspectURL, nil)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("-fleet-front lists no members")
	}
	return members, nil
}
