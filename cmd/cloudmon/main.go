// Command cloudmon runs the cloud monitor proxy against a private cloud,
// generating contracts from an XMI model file (or the bundled Cinder
// example when -xmi is omitted):
//
//	cloudmon -cloud http://127.0.0.1:8776 -project <id> -addr :8000 \
//	         -xmi diagrams.xmi -mode enforce
//
// The monitor authenticates to the cloud with a service account
// (-svc-user/-svc-pass) and exposes the model's URI space, e.g.
// /projects/{project_id}/volumes/{volume_id}.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"cloudmon/internal/contract"
	"cloudmon/internal/core"
	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/paper"
	"cloudmon/internal/slice"
	"cloudmon/internal/uml"
	"cloudmon/internal/xmi"
)

// splitCSV splits a comma-separated flag value into trimmed parts.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudmon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cloudmon", flag.ContinueOnError)
	addr := fs.String("addr", ":8000", "listen address")
	cloudURL := fs.String("cloud", "http://127.0.0.1:8776", "private cloud base URL")
	xmiPath := fs.String("xmi", "", "XMI model file (default: bundled Cinder example)")
	modeName := fs.String("mode", "enforce", "monitor mode: enforce | observe")
	inspectAddr := fs.String("inspect-addr", "", "optional listen address for the verdict/coverage API (e.g. 127.0.0.1:8001)")
	levelName := fs.String("level", "full", "contract check level: full | pre-only")
	evalName := fs.String("eval", "compiled", "contract evaluation engine: compiled (closure-chain programs) | lazy (demand-driven tree walk) | eager (whole-contract snapshots)")
	noFacts := fs.Bool("no-facts", false, "disable compile-time fact pruning in the lazy engine (A/B baseline)")
	postName := fs.String("post", "sync", "post-verification mode: sync | async (defer post-checks to a bounded worker queue)")
	postQueue := fs.Int("post-queue", 0, "async post queue capacity (0 = default)")
	postWorkers := fs.Int("post-workers", 0, "async post worker pool size (0 = default)")
	backpressureName := fs.String("post-backpressure", "block", "saturated async queue policy: block | shed")
	logFile := fs.String("log-file", "", "append verdicts as NDJSON to this file")
	metricsAddr := fs.String("metrics-addr", "", "optional listen address for the Prometheus-text /metrics endpoint (e.g. 127.0.0.1:8002)")
	auditDir := fs.String("audit-dir", "", "directory for the append-only audit trail (violations and Unverified outcomes)")
	auditMaxBytes := fs.Int64("audit-max-bytes", 0, "rotate audit segments at this size (0 = 8 MiB default)")
	parallelSnapshots := fs.Bool("parallel-snapshots", false,
		"resolve state snapshots concurrently (recommended when the cloud is across a network)")
	secReqs := fs.String("secreqs", "", "comma-separated SecReq tags to slice the model to (e.g. 1.3,1.4)")
	methods := fs.String("methods", "", "comma-separated HTTP methods to slice the model to (e.g. DELETE,PUT)")
	svcUser := fs.String("svc-user", "cm-svc", "monitor service-account user")
	svcPass := fs.String("svc-pass", "pw-svc", "monitor service-account password")
	project := fs.String("project", "", "project the service account is scoped to (required)")
	printContracts := fs.Bool("contracts", false, "print generated contracts at startup")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *project == "" {
		return fmt.Errorf("-project is required (the seeded project id; cloudsim prints it)")
	}

	var (
		model *uml.Model
		err   error
	)
	if *xmiPath != "" {
		model, err = xmi.ReadFile(*xmiPath)
		if err != nil {
			return err
		}
	} else {
		model = paper.CinderModel()
	}

	var mode monitor.Mode
	switch *modeName {
	case "enforce":
		mode = monitor.Enforce
	case "observe":
		mode = monitor.Observe
	default:
		return fmt.Errorf("unknown mode %q (want enforce or observe)", *modeName)
	}
	var level monitor.CheckLevel
	switch *levelName {
	case "full":
		level = monitor.CheckFull
	case "pre-only":
		level = monitor.CheckPreOnly
	default:
		return fmt.Errorf("unknown level %q (want full or pre-only)", *levelName)
	}
	eval, err := monitor.ParseEvalMode(*evalName)
	if err != nil {
		return err
	}
	postMode, err := monitor.ParsePostMode(*postName)
	if err != nil {
		return err
	}
	backpressure, err := monitor.ParseBackpressure(*backpressureName)
	if err != nil {
		return err
	}

	// Optional model slicing (paper §VI.B future work): monitor only the
	// selected scenarios.
	var preds []slice.Predicate
	if *secReqs != "" {
		preds = append(preds, slice.BySecReqs(splitCSV(*secReqs)...))
	}
	if *methods != "" {
		var ms []uml.HTTPMethod
		for _, m := range splitCSV(*methods) {
			ms = append(ms, uml.HTTPMethod(strings.ToUpper(m)))
		}
		preds = append(preds, slice.ByMethods(ms...))
	}
	if len(preds) > 0 {
		model, err = slice.Model(model, slice.Any(preds...))
		if err != nil {
			return err
		}
		fmt.Printf("sliced model: %d transitions remain\n", len(model.Behavioral.Transitions))
	}

	var onVerdict func(monitor.Verdict)
	if *logFile != "" {
		f, err := os.OpenFile(*logFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open log file: %w", err)
		}
		defer f.Close()
		aw := monitor.NewAuditWriter(f)
		onVerdict = aw.Record
	}

	var audit *obs.AuditLog
	if *auditDir != "" {
		audit, err = obs.OpenAuditLog(*auditDir, *auditMaxBytes)
		if err != nil {
			return fmt.Errorf("open audit log: %w", err)
		}
		defer audit.Close()
	}

	sys, err := core.Build(core.Options{
		Model:    model,
		CloudURL: *cloudURL,
		ServiceAccount: osbinding.ServiceAccount{
			User: *svcUser, Password: *svcPass, ProjectID: *project,
		},
		Mode:              mode,
		Level:             level,
		Eval:              eval,
		NoFacts:           *noFacts,
		Post:              postMode,
		PostQueueCap:      *postQueue,
		PostWorkers:       *postWorkers,
		PostBackpressure:  backpressure,
		OnVerdict:         onVerdict,
		ParallelSnapshots: *parallelSnapshots,
		Audit:             audit,
	})
	if err != nil {
		return err
	}
	// Drain deferred post-checks before the audit log closes.
	defer sys.Monitor.Close()

	fmt.Printf("cloud monitor (%s mode, %s eval) on %s, proxying %s\n", mode, eval, *addr, *cloudURL)
	fmt.Printf("  %d contracts over model %q; security requirements %v\n",
		len(sys.Contracts.Contracts), model.Resource.Name, sys.Contracts.SecReqs())
	for _, r := range sys.Routes {
		fmt.Printf("  %-6s %-45s -> %s\n", r.Trigger.Method, r.Pattern, r.Backend)
	}
	if *printContracts {
		fmt.Println()
		fmt.Print(contract.RenderSet(sys.Contracts, contract.StyleConjunction))
	}
	if audit != nil {
		fmt.Printf("  audit trail in %s\n", audit.Dir())
	}
	// Either listener failing brings the process down.
	errCh := make(chan error, 1)
	extra := 0
	if *inspectAddr != "" {
		fmt.Printf("  inspect API on %s (/log /violations /coverage /outcomes /contracts /stages)\n", *inspectAddr)
		extra++
		go func() {
			errCh <- http.ListenAndServe(*inspectAddr, sys.Monitor.InspectHandler())
		}()
	}
	if *metricsAddr != "" {
		fmt.Printf("  metrics on %s/metrics\n", *metricsAddr)
		extra++
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/metrics", sys.Metrics.Handler())
			errCh <- http.ListenAndServe(*metricsAddr, mux)
		}()
	}
	if extra == 0 {
		return http.ListenAndServe(*addr, sys.Monitor)
	}
	go func() {
		errCh <- http.ListenAndServe(*addr, sys.Monitor)
	}()
	return <-errCh
}
