package main

import "testing"

func TestFlagValidation(t *testing.T) {
	// -project is mandatory.
	if err := run([]string{}); err == nil {
		t.Error("missing -project accepted")
	}
	// Unknown mode is rejected before any network activity.
	if err := run([]string{"-project", "p1", "-mode", "bogus"}); err == nil {
		t.Error("bogus mode accepted")
	}
	// Missing XMI file is rejected.
	if err := run([]string{"-project", "p1", "-xmi", "no-such-file.xmi"}); err == nil {
		t.Error("missing XMI accepted")
	}
	// Unknown flag is rejected.
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
	// Unknown check level is rejected.
	if err := run([]string{"-project", "p1", "-level", "bogus"}); err == nil {
		t.Error("bogus level accepted")
	}
	// A slice matching nothing is rejected.
	if err := run([]string{"-project", "p1", "-secreqs", "9.9"}); err == nil {
		t.Error("empty slice accepted")
	}
}

func TestParseFleetMembers(t *testing.T) {
	members, err := parseFleetMembers("m-00=http://h0:8000|http://h0:8001, m-01=http://h1:8000")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || members[0].ID != "m-00" || members[1].ID != "m-01" {
		t.Fatalf("parsed %+v", members)
	}
	// The first member has an inspect URL, so it can federate and take bumps.
	if members[0].Metrics == nil || members[0].Invalidate == nil {
		t.Error("inspectable member lacks Metrics/Invalidate")
	}
	// The second is routing-only.
	if members[1].Metrics != nil || members[1].Invalidate != nil {
		t.Error("routing-only member grew Metrics/Invalidate")
	}
	for _, bad := range []string{"", "m-00", "=http://h0:8000", "m-00=", "m-00=%%bad"} {
		if _, err := parseFleetMembers(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// A front spec never needs -project.
	if err := run([]string{"-fleet-front", "bogus-entry"}); err == nil {
		t.Error("bogus -fleet-front accepted")
	}
}

func TestSplitCSV(t *testing.T) {
	got := splitCSV(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitCSV = %v", got)
	}
	if splitCSV("") != nil {
		t.Error("empty input should yield nil")
	}
}
