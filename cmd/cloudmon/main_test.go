package main

import "testing"

func TestFlagValidation(t *testing.T) {
	// -project is mandatory.
	if err := run([]string{}); err == nil {
		t.Error("missing -project accepted")
	}
	// Unknown mode is rejected before any network activity.
	if err := run([]string{"-project", "p1", "-mode", "bogus"}); err == nil {
		t.Error("bogus mode accepted")
	}
	// Missing XMI file is rejected.
	if err := run([]string{"-project", "p1", "-xmi", "no-such-file.xmi"}); err == nil {
		t.Error("missing XMI accepted")
	}
	// Unknown flag is rejected.
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
	// Unknown check level is rejected.
	if err := run([]string{"-project", "p1", "-level", "bogus"}); err == nil {
		t.Error("bogus level accepted")
	}
	// A slice matching nothing is rejected.
	if err := run([]string{"-project", "p1", "-secreqs", "9.9"}); err == nil {
		t.Error("empty slice accepted")
	}
}

func TestSplitCSV(t *testing.T) {
	got := splitCSV(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitCSV = %v", got)
	}
	if splitCSV("") != nil {
		t.Error("empty input should yield nil")
	}
}
