package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
	"cloudmon/internal/xmi"
)

func writeModel(t *testing.T, path string, m *uml.Model) {
	t.Helper()
	if err := xmi.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
}

func TestIdenticalModelsExitClean(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.xmi")
	b := filepath.Join(dir, "b.xmi")
	writeModel(t, a, paper.CinderModel())
	writeModel(t, b, paper.CinderModel())
	changed, err := run([]string{a, b}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("identical models reported as changed")
	}
}

func TestDriftedModelReported(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.xmi")
	b := filepath.Join(dir, "b.xmi")
	writeModel(t, a, paper.CinderModel())
	m := paper.CinderModel()
	for _, tr := range m.Behavioral.Transitions {
		if tr.Trigger.Method == uml.DELETE {
			tr.Guard = strings.ReplaceAll(tr.Guard,
				"user.id.groups='admin'", "user.id.groups='member'")
		}
	}
	writeModel(t, b, m)
	changed, err := run([]string{a, b}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("guard drift not reported")
	}
}

func TestUsageErrors(t *testing.T) {
	if _, err := run([]string{}, os.Stdout); err == nil {
		t.Error("no args accepted")
	}
	if _, err := run([]string{"only-one.xmi"}, os.Stdout); err == nil {
		t.Error("single arg accepted")
	}
	if _, err := run([]string{"missing-a.xmi", "missing-b.xmi"}, os.Stdout); err == nil {
		t.Error("missing files accepted")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.xmi")
	writeModel(t, a, paper.CinderModel())
	if _, err := run([]string{a, "missing-b.xmi"}, os.Stdout); err == nil {
		t.Error("missing new model accepted")
	}
}
