// Command contractdiff compares the contracts generated from two model
// versions — the release-to-release requirement check the paper's
// conclusion motivates ("check whether functional and security
// requirements have been preserved in new releases"):
//
//	contractdiff old.xmi new.xmi
//
// Exit status: 0 when the contracts are unchanged, 1 when requirements
// drifted, 2 on usage or model errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudmon/internal/contract"
	"cloudmon/internal/xmi"
)

func main() {
	changed, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contractdiff:", err)
		os.Exit(2)
	}
	if changed {
		os.Exit(1)
	}
}

func run(args []string, out *os.File) (changed bool, err error) {
	fs := flag.NewFlagSet("contractdiff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("usage: contractdiff old.xmi new.xmi")
	}
	oldModel, err := xmi.ReadFile(fs.Arg(0))
	if err != nil {
		return false, fmt.Errorf("old model: %w", err)
	}
	newModel, err := xmi.ReadFile(fs.Arg(1))
	if err != nil {
		return false, fmt.Errorf("new model: %w", err)
	}
	oldSet, err := contract.Generate(oldModel)
	if err != nil {
		return false, fmt.Errorf("old model: %w", err)
	}
	newSet, err := contract.Generate(newModel)
	if err != nil {
		return false, fmt.Errorf("new model: %w", err)
	}
	diff := contract.DiffSets(oldSet, newSet)
	diff.Format(out)
	return !diff.Empty(), nil
}
