// Command auditctl queries the cloud monitor's audit trail — the
// append-only JSONL chain an obs.AuditLog writes — without the monitor
// process:
//
//	auditctl list -dir audit/ -secreq 1.3 -outcome rejected
//	auditctl summarize -dir audit/
//	auditctl verify -dir audit/
//
// list filters records (by SecReq, outcome, resource, time window) and
// prints one line per record, or full JSON with -json. summarize
// tallies the trail per outcome, SecReq and trigger, and condenses the
// recorded stage timings. verify checks the chain: contiguous segment
// indices, contiguous sequence numbers, no torn lines — exit status 1
// when the trail has a hole.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"cloudmon/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditctl:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func usage(out io.Writer) {
	fmt.Fprintln(out, `usage: auditctl <list|summarize|verify> -dir <audit-dir> [flags]

  list       print records, optionally filtered (-secreq -outcome -resource -since -until -json)
  summarize  tally the trail per outcome, SecReq and trigger
  verify     check the chain (segments, sequence, torn lines); exit 1 on problems`)
}

func run(args []string, out io.Writer) (int, error) {
	if len(args) == 0 {
		usage(out)
		return 2, nil
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return runList(rest, out)
	case "summarize":
		return runSummarize(rest, out)
	case "verify":
		return runVerify(rest, out)
	case "help", "-h", "-help", "--help":
		usage(out)
		return 0, nil
	}
	usage(out)
	return 2, fmt.Errorf("unknown subcommand %q", cmd)
}

// filter is the record predicate list shares across flags.
type filter struct {
	secReq   string
	outcome  string
	resource string
	since    time.Time
	until    time.Time
}

func (f *filter) match(rec *obs.AuditRecord) bool {
	if f.secReq != "" {
		found := false
		for _, s := range rec.SecReqs {
			if s == f.secReq {
				found = true
				break
			}
		}
		if !found {
			for _, s := range rec.MatchedSecReqs {
				if s == f.secReq {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	if f.outcome != "" && rec.Outcome != f.outcome {
		return false
	}
	if f.resource != "" && rec.Resource != f.resource {
		return false
	}
	ts := rec.TimeStamp()
	if !f.since.IsZero() && ts.Before(f.since) {
		return false
	}
	if !f.until.IsZero() && ts.After(f.until) {
		return false
	}
	return true
}

// parseWhen accepts RFC 3339 or a Unix-seconds integer.
func parseWhen(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	var secs int64
	if _, err := fmt.Sscanf(s, "%d", &secs); err == nil {
		return time.Unix(secs, 0), nil
	}
	return time.Time{}, fmt.Errorf("bad time %q (want RFC 3339 or Unix seconds)", s)
}

func runList(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("auditctl list", flag.ContinueOnError)
	dir := fs.String("dir", "", "audit directory (required)")
	secReq := fs.String("secreq", "", "keep records naming this SecReq ID")
	outcome := fs.String("outcome", "", "keep records with this outcome (e.g. rejected, violation:postcondition)")
	resource := fs.String("resource", "", "keep records for this resource (e.g. volume)")
	since := fs.String("since", "", "keep records at or after this time (RFC 3339 or Unix seconds)")
	until := fs.String("until", "", "keep records at or before this time")
	jsonOut := fs.Bool("json", false, "print full records as JSON lines")
	limit := fs.Int("limit", 0, "stop after this many records (0 = all)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *dir == "" {
		return 2, fmt.Errorf("list: -dir is required")
	}
	f := filter{secReq: *secReq, outcome: *outcome, resource: *resource}
	var err error
	if f.since, err = parseWhen(*since); err != nil {
		return 2, err
	}
	if f.until, err = parseWhen(*until); err != nil {
		return 2, err
	}
	res, err := obs.ReadAuditDir(*dir)
	if err != nil {
		return 2, err
	}
	enc := json.NewEncoder(out)
	shown := 0
	for i := range res.Records {
		rec := &res.Records[i]
		if !f.match(rec) {
			continue
		}
		if *jsonOut {
			if err := enc.Encode(rec); err != nil {
				return 2, err
			}
		} else {
			secs := strings.Join(rec.SecReqs, ",")
			if secs == "" {
				secs = "-"
			}
			fmt.Fprintf(out, "%6d  %s  %-24s %-8s %-28s secreqs=%s  %s\n",
				rec.Seq, rec.TimeStamp().UTC().Format(time.RFC3339), rec.Outcome,
				rec.Method, rec.Resource, secs, rec.Detail)
		}
		shown++
		if *limit > 0 && shown >= *limit {
			break
		}
	}
	if !*jsonOut {
		fmt.Fprintf(out, "%d of %d records matched", shown, len(res.Records))
		if len(res.Torn) > 0 {
			fmt.Fprintf(out, " (%d torn lines skipped)", len(res.Torn))
		}
		fmt.Fprintln(out)
	}
	return 0, nil
}

// summary is the JSON document summarize emits.
type summary struct {
	Records   int                         `json:"records"`
	Segments  int                         `json:"segments"`
	Torn      int                         `json:"torn"`
	First     string                      `json:"first,omitempty"`
	Last      string                      `json:"last,omitempty"`
	Outcomes  map[string]int              `json:"outcomes"`
	SecReqs   map[string]int              `json:"sec_reqs"`
	Triggers  map[string]int              `json:"triggers"`
	NoSecReqs map[string]int              `json:"records_without_secreqs,omitempty"`
	Stages    map[string]obs.StageSummary `json:"stages,omitempty"`
}

func runSummarize(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("auditctl summarize", flag.ContinueOnError)
	dir := fs.String("dir", "", "audit directory (required)")
	jsonOut := fs.Bool("json", false, "emit the summary as JSON")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *dir == "" {
		return 2, fmt.Errorf("summarize: -dir is required")
	}
	res, err := obs.ReadAuditDir(*dir)
	if err != nil {
		return 2, err
	}
	sum := summary{
		Records:   len(res.Records),
		Segments:  len(res.Segments),
		Torn:      len(res.Torn),
		Outcomes:  map[string]int{},
		SecReqs:   map[string]int{},
		Triggers:  map[string]int{},
		NoSecReqs: map[string]int{},
	}
	// Re-aggregate the recorded stage timings into histograms so the
	// summary carries percentiles, not just counts.
	stageHists := map[string]*obs.Histogram{}
	for i := range res.Records {
		rec := &res.Records[i]
		sum.Outcomes[rec.Outcome]++
		sum.Triggers[rec.Trigger]++
		for _, s := range rec.SecReqs {
			sum.SecReqs[s]++
		}
		if len(rec.SecReqs) == 0 {
			sum.NoSecReqs[rec.Outcome]++
		}
		for stage, ns := range rec.StageNanos {
			h, ok := stageHists[stage]
			if !ok {
				h = obs.NewDurationHistogram()
				stageHists[stage] = h
			}
			h.Observe(time.Duration(ns))
		}
	}
	if len(stageHists) > 0 {
		sum.Stages = map[string]obs.StageSummary{}
		for stage, h := range stageHists {
			sum.Stages[stage] = obs.SummarizeHistogram(h.Snapshot())
		}
	}
	if len(res.Records) > 0 {
		sum.First = res.Records[0].TimeStamp().UTC().Format(time.RFC3339)
		sum.Last = res.Records[len(res.Records)-1].TimeStamp().UTC().Format(time.RFC3339)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return 2, err
		}
		return 0, nil
	}
	fmt.Fprintf(out, "%d records in %d segments (%d torn lines)\n", sum.Records, sum.Segments, sum.Torn)
	if sum.First != "" {
		fmt.Fprintf(out, "  window %s .. %s\n", sum.First, sum.Last)
	}
	printTally(out, "outcomes", sum.Outcomes)
	printTally(out, "sec reqs", sum.SecReqs)
	printTally(out, "triggers", sum.Triggers)
	if len(sum.NoSecReqs) > 0 {
		printTally(out, "records without secreqs", sum.NoSecReqs)
	}
	if len(sum.Stages) > 0 {
		for _, name := range obs.StageNames() {
			st, ok := sum.Stages[name]
			if !ok {
				continue
			}
			fmt.Fprintf(out, "  stage %-14s %6d spans  p50 %.0f  p95 %.0f  p99 %.0f µs\n",
				name, st.Count, st.P50US, st.P95US, st.P99US)
		}
	}
	return 0, nil
}

func printTally(out io.Writer, title string, m map[string]int) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(out, "  %s:", title)
	for _, k := range keys {
		fmt.Fprintf(out, " %s=%d", k, m[k])
	}
	fmt.Fprintln(out)
}

func runVerify(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("auditctl verify", flag.ContinueOnError)
	dir := fs.String("dir", "", "audit directory (required)")
	jsonOut := fs.Bool("json", false, "emit the verification result as JSON")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *dir == "" {
		return 2, fmt.Errorf("verify: -dir is required")
	}
	res, err := obs.VerifyAuditDir(*dir)
	if err != nil {
		return 2, err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return 2, err
		}
	} else {
		fmt.Fprintf(out, "%d records in %d segments\n", res.Records, res.Segments)
		for _, p := range res.Problems {
			fmt.Fprintf(out, "  problem: %s\n", p)
		}
		if res.OK() {
			fmt.Fprintln(out, "chain OK")
		}
	}
	if !res.OK() {
		return 1, nil
	}
	return 0, nil
}
