// Command auditctl queries and packages the cloud monitor's audit trail
// — the append-only JSONL chain an obs.AuditLog writes — without the
// monitor process:
//
//	auditctl list -dir audit/ -secreq 1.3 -outcome rejected
//	auditctl summarize -dir audit/
//	auditctl verify -dir audit/
//	auditctl keygen -out signing.key
//	auditctl pack -dir audit/ -out run.pack -key signing.key
//	auditctl verify -pack run.pack
//	auditctl replay -pack run.pack
//
// list and summarize stream the trail segment by segment — one line in
// memory at a time — so multi-gigabyte trails cost nothing to inspect.
// verify checks either a raw trail (chain contiguity, torn lines) or an
// evidence pack (SHA-256 manifest, Ed25519 signature, then the packed
// chain). replay re-evaluates every packed verdict against the packed
// snapshots and diffs outcome and failing clause against the record —
// independent reproduction of the monitor's decisions.
//
// Exit codes are stable for scripting:
//
//	0  clean
//	1  trail has crash-torn final lines only (the expected crash shape)
//	2  usage or infrastructure error
//	3  trail corruption (mid-file damage, chain gaps, unknown schema)
//	4  pack envelope verification failed (manifest or signature)
//	5  replay divergence (a verdict does not reproduce)
package main

import (
	"crypto/ed25519"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/evidence"
	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
	"cloudmon/internal/paper"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditctl:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func usage(out io.Writer) {
	fmt.Fprintln(out, `usage: auditctl <list|summarize|verify|keygen|pack|replay> [flags]

  list       print records, optionally filtered (-secreq -outcome -resource -since -until -json)
  summarize  tally the trail per outcome, SecReq and trigger
  verify     check a trail (-dir) or an evidence pack (-pack [-pub key.pub]);
             exit 1 torn tail, 3 corruption, 4 bad manifest/signature
  keygen     generate an Ed25519 signing key (-out key; writes key and key.pub)
  pack       cut a signed evidence pack from a trail (-dir -out pack[.zip] -key key)
  replay     re-evaluate packed verdicts against packed snapshots
             (-pack [-model cinder|nova] [-json]); exit 5 on divergence`)
}

func run(args []string, out io.Writer) (int, error) {
	if len(args) == 0 {
		usage(out)
		return 2, nil
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return runList(rest, out)
	case "summarize":
		return runSummarize(rest, out)
	case "verify":
		return runVerify(rest, out)
	case "keygen":
		return runKeygen(rest, out)
	case "pack":
		return runPack(rest, out)
	case "replay":
		return runReplay(rest, out)
	case "help", "-h", "-help", "--help":
		usage(out)
		return 0, nil
	}
	usage(out)
	return 2, fmt.Errorf("unknown subcommand %q", cmd)
}

// filter is the record predicate list shares across flags.
type filter struct {
	secReq   string
	outcome  string
	resource string
	since    time.Time
	until    time.Time
}

func (f *filter) match(rec *obs.AuditRecord) bool {
	if f.secReq != "" {
		found := false
		for _, s := range rec.SecReqs {
			if s == f.secReq {
				found = true
				break
			}
		}
		if !found {
			for _, s := range rec.MatchedSecReqs {
				if s == f.secReq {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	if f.outcome != "" && rec.Outcome != f.outcome {
		return false
	}
	if f.resource != "" && rec.Resource != f.resource {
		return false
	}
	ts := rec.TimeStamp()
	if !f.since.IsZero() && ts.Before(f.since) {
		return false
	}
	if !f.until.IsZero() && ts.After(f.until) {
		return false
	}
	return true
}

// parseWhen accepts RFC 3339 or a Unix-seconds integer.
func parseWhen(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	var secs int64
	if _, err := fmt.Sscanf(s, "%d", &secs); err == nil {
		return time.Unix(secs, 0), nil
	}
	return time.Time{}, fmt.Errorf("bad time %q (want RFC 3339 or Unix seconds)", s)
}

func runList(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("auditctl list", flag.ContinueOnError)
	dir := fs.String("dir", "", "audit directory (required)")
	secReq := fs.String("secreq", "", "keep records naming this SecReq ID")
	outcome := fs.String("outcome", "", "keep records with this outcome (e.g. rejected, violation:postcondition)")
	resource := fs.String("resource", "", "keep records for this resource (e.g. volume)")
	since := fs.String("since", "", "keep records at or after this time (RFC 3339 or Unix seconds)")
	until := fs.String("until", "", "keep records at or before this time")
	jsonOut := fs.Bool("json", false, "print full records as JSON lines")
	limit := fs.Int("limit", 0, "stop after this many records (0 = all)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *dir == "" {
		return 2, fmt.Errorf("list: -dir is required")
	}
	f := filter{secReq: *secReq, outcome: *outcome, resource: *resource}
	var err error
	if f.since, err = parseWhen(*since); err != nil {
		return 2, err
	}
	if f.until, err = parseWhen(*until); err != nil {
		return 2, err
	}
	// The trail is streamed segment by segment: one record in memory at
	// a time, however large the trail.
	enc := json.NewEncoder(out)
	shown := 0
	scan, err := obs.ScanAuditDir(*dir, func(rec *obs.AuditRecord) error {
		if !f.match(rec) {
			return nil
		}
		if *jsonOut {
			if err := enc.Encode(rec); err != nil {
				return err
			}
		} else {
			secs := strings.Join(rec.SecReqs, ",")
			if secs == "" {
				secs = "-"
			}
			fmt.Fprintf(out, "%6d  %s  %-24s %-8s %-28s secreqs=%s  %s\n",
				rec.Seq, rec.TimeStamp().UTC().Format(time.RFC3339), rec.Outcome,
				rec.Method, rec.Resource, secs, rec.Detail)
		}
		shown++
		if *limit > 0 && shown >= *limit {
			return obs.ErrStopScan
		}
		return nil
	})
	if err != nil {
		return 2, err
	}
	if !*jsonOut {
		if *limit > 0 && shown >= *limit {
			fmt.Fprintf(out, "%d records shown (limit %d)", shown, *limit)
		} else {
			fmt.Fprintf(out, "%d of %d records matched", shown, scan.Records)
		}
		if len(scan.Torn) > 0 {
			fmt.Fprintf(out, " (%d torn lines skipped)", len(scan.Torn))
		}
		if scan.Legacy > 0 {
			fmt.Fprintf(out, " (%d legacy unversioned records)", scan.Legacy)
		}
		fmt.Fprintln(out)
	}
	return 0, nil
}

// summary is the JSON document summarize emits.
type summary struct {
	Records   int                         `json:"records"`
	Segments  int                         `json:"segments"`
	Torn      int                         `json:"torn"`
	Legacy    int                         `json:"legacy_records,omitempty"`
	First     string                      `json:"first,omitempty"`
	Last      string                      `json:"last,omitempty"`
	Outcomes  map[string]int              `json:"outcomes"`
	SecReqs   map[string]int              `json:"sec_reqs"`
	Triggers  map[string]int              `json:"triggers"`
	NoSecReqs map[string]int              `json:"records_without_secreqs,omitempty"`
	Stages    map[string]obs.StageSummary `json:"stages,omitempty"`
}

func runSummarize(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("auditctl summarize", flag.ContinueOnError)
	dir := fs.String("dir", "", "audit directory (required)")
	jsonOut := fs.Bool("json", false, "emit the summary as JSON")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *dir == "" {
		return 2, fmt.Errorf("summarize: -dir is required")
	}
	sum := summary{
		Outcomes:  map[string]int{},
		SecReqs:   map[string]int{},
		Triggers:  map[string]int{},
		NoSecReqs: map[string]int{},
	}
	// Aggregation is streaming: tallies and histograms update record by
	// record, nothing is materialized.
	stageHists := map[string]*obs.Histogram{}
	var firstRec, lastRec time.Time
	scan, err := obs.ScanAuditDir(*dir, func(rec *obs.AuditRecord) error {
		sum.Outcomes[rec.Outcome]++
		sum.Triggers[rec.Trigger]++
		for _, s := range rec.SecReqs {
			sum.SecReqs[s]++
		}
		if len(rec.SecReqs) == 0 {
			sum.NoSecReqs[rec.Outcome]++
		}
		for stage, ns := range rec.StageNanos {
			h, ok := stageHists[stage]
			if !ok {
				h = obs.NewDurationHistogram()
				stageHists[stage] = h
			}
			h.Observe(time.Duration(ns))
		}
		if firstRec.IsZero() {
			firstRec = rec.TimeStamp()
		}
		lastRec = rec.TimeStamp()
		return nil
	})
	if err != nil {
		return 2, err
	}
	sum.Records = scan.Records
	sum.Segments = len(scan.Segments)
	sum.Torn = len(scan.Torn)
	sum.Legacy = scan.Legacy
	if len(stageHists) > 0 {
		sum.Stages = map[string]obs.StageSummary{}
		for stage, h := range stageHists {
			sum.Stages[stage] = obs.SummarizeHistogram(h.Snapshot())
		}
	}
	if !firstRec.IsZero() {
		sum.First = firstRec.UTC().Format(time.RFC3339)
		sum.Last = lastRec.UTC().Format(time.RFC3339)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return 2, err
		}
		return 0, nil
	}
	fmt.Fprintf(out, "%d records in %d segments (%d torn lines)\n", sum.Records, sum.Segments, sum.Torn)
	if sum.Legacy > 0 {
		fmt.Fprintf(out, "  %d legacy unversioned records\n", sum.Legacy)
	}
	if sum.First != "" {
		fmt.Fprintf(out, "  window %s .. %s\n", sum.First, sum.Last)
	}
	printTally(out, "outcomes", sum.Outcomes)
	printTally(out, "sec reqs", sum.SecReqs)
	printTally(out, "triggers", sum.Triggers)
	if len(sum.NoSecReqs) > 0 {
		printTally(out, "records without secreqs", sum.NoSecReqs)
	}
	if len(sum.Stages) > 0 {
		for _, name := range obs.StageNames() {
			st, ok := sum.Stages[name]
			if !ok {
				continue
			}
			fmt.Fprintf(out, "  stage %-14s %6d spans  p50 %.0f  p95 %.0f  p99 %.0f µs\n",
				name, st.Count, st.P50US, st.P95US, st.P99US)
		}
	}
	return 0, nil
}

func printTally(out io.Writer, title string, m map[string]int) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(out, "  %s:", title)
	for _, k := range keys {
		fmt.Fprintf(out, " %s=%d", k, m[k])
	}
	fmt.Fprintln(out)
}

// chainExit maps a chain verification to the documented exit code:
// torn-tail-only damage (the expected crash shape) is distinct from
// mid-file corruption or sequence gaps.
func chainExit(res *obs.VerifyResult) int {
	switch {
	case res.OK():
		return 0
	case res.TornTailOnly():
		return 1
	default:
		return 3
	}
}

func runVerify(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("auditctl verify", flag.ContinueOnError)
	dir := fs.String("dir", "", "audit directory")
	pack := fs.String("pack", "", "evidence pack (directory or .zip) instead of -dir")
	pubFile := fs.String("pub", "", "verify the pack signature against this public key file (default: the pack's embedded key)")
	jsonOut := fs.Bool("json", false, "emit the verification result as JSON")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	switch {
	case *dir != "" && *pack != "":
		return 2, fmt.Errorf("verify: -dir and -pack are mutually exclusive")
	case *dir == "" && *pack == "":
		return 2, fmt.Errorf("verify: one of -dir or -pack is required")
	case *pack != "":
		return verifyPack(*pack, *pubFile, *jsonOut, out)
	}
	res, err := obs.VerifyAuditDir(*dir)
	if err != nil {
		return 2, err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return 2, err
		}
	} else {
		fmt.Fprintf(out, "%d records in %d segments\n", res.Records, res.Segments)
		if res.Legacy > 0 {
			fmt.Fprintf(out, "  %d legacy unversioned records\n", res.Legacy)
		}
		for _, p := range res.Problems {
			fmt.Fprintf(out, "  problem: %s\n", p)
		}
		if res.OK() {
			fmt.Fprintln(out, "chain OK")
		}
	}
	return chainExit(res), nil
}

func verifyPack(packPath, pubFile string, jsonOut bool, out io.Writer) (int, error) {
	var pub ed25519.PublicKey
	if pubFile != "" {
		var err error
		if pub, err = evidence.LoadPublicKey(pubFile); err != nil {
			return 2, err
		}
	}
	p, err := evidence.OpenPack(packPath)
	if err != nil {
		return 2, err
	}
	defer p.Close()
	rep, err := p.Verify(pub)
	if err != nil {
		return 2, err
	}
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 2, err
		}
	} else {
		fmt.Fprintf(out, "pack %s (%d entries, key %s)\n", rep.PackID, rep.Entries, rep.KeyID)
		if rep.SignedByEmbedded {
			fmt.Fprintln(out, "  signature checked against the pack's embedded key (integrity, not origin)")
		}
		for _, prob := range rep.Problems {
			fmt.Fprintf(out, "  problem: %s\n", prob)
		}
		if rep.Chain != nil {
			for _, prob := range rep.Chain.Problems {
				fmt.Fprintf(out, "  chain problem: %s\n", prob)
			}
		}
		if rep.OK() {
			fmt.Fprintln(out, "pack OK: manifest, signature and chain verified")
		}
	}
	if !rep.PackOK() {
		return 4, nil
	}
	if rep.Chain == nil {
		return 4, nil
	}
	return chainExit(rep.Chain), nil
}

func runKeygen(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("auditctl keygen", flag.ContinueOnError)
	outFile := fs.String("out", "", "private key file to write (required; public half goes to <out>.pub)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *outFile == "" {
		return 2, fmt.Errorf("keygen: -out is required")
	}
	if _, err := os.Stat(*outFile); err == nil {
		return 2, fmt.Errorf("keygen: %s already exists", *outFile)
	}
	pubKey, priv, err := evidence.GenerateKey(nil)
	if err != nil {
		return 2, err
	}
	if err := evidence.WriteKeyFiles(*outFile, priv); err != nil {
		return 2, err
	}
	fmt.Fprintf(out, "wrote %s and %s.pub (key %s)\n", *outFile, *outFile, evidence.KeyID(pubKey))
	return 0, nil
}

func runPack(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("auditctl pack", flag.ContinueOnError)
	dir := fs.String("dir", "", "audit directory (required)")
	outPath := fs.String("out", "", "pack to write: a directory, or a .zip path (required)")
	keyFile := fs.String("key", "", "Ed25519 private key file (required; see auditctl keygen)")
	scenario := fs.String("scenario", "", "scenario label for meta.json")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *dir == "" || *outPath == "" || *keyFile == "" {
		return 2, fmt.Errorf("pack: -dir, -out and -key are required")
	}
	priv, err := evidence.LoadPrivateKey(*keyFile)
	if err != nil {
		return 2, err
	}
	res, err := evidence.BuildPack(*dir, *outPath, evidence.PackOptions{
		Key:      priv,
		Scenario: *scenario,
		Tool:     "auditctl",
	})
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(out, "packed %d records in %d segments -> %s\n", res.Records, res.Segments, res.Path)
	fmt.Fprintf(out, "  pack %s signed by %s\n", res.PackID, res.KeyID)
	if res.Torn > 0 {
		fmt.Fprintf(out, "  %d torn lines packed as-is (the pack is evidence, not a cleanup)\n", res.Torn)
	}
	return 0, nil
}

// replayContracts regenerates the contract set the trail was monitored
// under. "auto" infers the model from the pack's scenario label.
func replayContracts(model, scenario string) (*contract.Set, error) {
	switch model {
	case "", "auto":
		if strings.HasPrefix(scenario, "nova") {
			model = "nova"
		} else {
			model = "cinder"
		}
	}
	switch model {
	case "cinder":
		return contract.Generate(paper.CinderModel())
	case "nova":
		return contract.Generate(paper.NovaModel())
	}
	return nil, fmt.Errorf("replay: unknown model %q (cinder|nova|auto)", model)
}

// readAuditTree reads dir as one audit chain or — when dir itself holds
// no segments but its subdirectories do (a fleet root with one trail per
// instance) — merges the per-instance chains into a single record set, in
// instance order. Per-instance Seq chains stay intact within each trail;
// the merged set is what fleet-wide replay evaluates.
func readAuditTree(dir string) (*obs.ReadResult, error) {
	segs, err := obs.AuditSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		return obs.ReadAuditDir(dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	merged := &obs.ReadResult{}
	instances := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		subSegs, err := obs.AuditSegments(sub)
		if err != nil || len(subSegs) == 0 {
			continue
		}
		r, err := obs.ReadAuditDir(sub)
		if err != nil {
			return nil, fmt.Errorf("replay: instance trail %s: %w", e.Name(), err)
		}
		instances++
		merged.Records = append(merged.Records, r.Records...)
		merged.Segments = append(merged.Segments, r.Segments...)
		merged.Torn = append(merged.Torn, r.Torn...)
		merged.Legacy += r.Legacy
	}
	if instances == 0 {
		return nil, fmt.Errorf("replay: %s holds no audit segments, directly or in per-instance subdirectories", dir)
	}
	return merged, nil
}

func runReplay(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("auditctl replay", flag.ContinueOnError)
	pack := fs.String("pack", "", "evidence pack (directory or .zip)")
	dir := fs.String("dir", "", "raw audit directory instead of -pack")
	model := fs.String("model", "auto", "contract model the trail was monitored under (cinder|nova|auto)")
	jsonOut := fs.Bool("json", false, "emit the replay summary as JSON")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	switch {
	case *pack != "" && *dir != "":
		return 2, fmt.Errorf("replay: -pack and -dir are mutually exclusive")
	case *pack == "" && *dir == "":
		return 2, fmt.Errorf("replay: one of -pack or -dir is required")
	}
	var (
		recs     *obs.ReadResult
		scenario string
	)
	if *pack != "" {
		p, err := evidence.OpenPack(*pack)
		if err != nil {
			return 2, err
		}
		defer p.Close()
		// Tampered evidence must not be replayed as if authentic: the
		// envelope is verified (against the embedded key) first.
		rep, err := p.Verify(nil)
		if err != nil {
			return 2, err
		}
		if !rep.PackOK() {
			for _, prob := range rep.Problems {
				fmt.Fprintf(out, "  problem: %s\n", prob)
			}
			return 4, nil
		}
		scenario = p.Meta.Scenario
		if recs, err = p.Records(); err != nil {
			return 2, err
		}
	} else {
		var err error
		if recs, err = readAuditTree(*dir); err != nil {
			return 2, err
		}
	}
	set, err := replayContracts(*model, scenario)
	if err != nil {
		return 2, err
	}
	replayer, err := monitor.NewReplayer(set)
	if err != nil {
		return 2, err
	}
	sum := replayer.ReplayAll(recs.Records)
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return 2, err
		}
	} else {
		fmt.Fprintf(out, "replayed %d/%d records: %d matched, %d diverged, %d skipped\n",
			sum.Replayed, sum.Total, sum.Matched, sum.Diverged, sum.Skipped)
		for reason, n := range sum.SkipReasons {
			fmt.Fprintf(out, "  skipped %d: %s\n", n, reason)
		}
		for _, f := range sum.Failures {
			fmt.Fprintf(out, "  DIVERGED seq %d %s: %s\n", f.Seq, f.Trigger, f.Reason)
		}
		if sum.OK() {
			fmt.Fprintln(out, "replay OK: every replayable verdict reproduced")
		}
	}
	if !sum.OK() {
		return 5, nil
	}
	return 0, nil
}
