package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudmon/internal/obs"
)

// writeTrail builds a small audit trail and returns its directory.
func writeTrail(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	log, err := obs.OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*obs.AuditRecord{
		{Trigger: "DELETE(volume)", Method: "DELETE", Resource: "volume",
			Outcome: "blocked", SecReqs: []string{"1.4"}, Time: 1000},
		{Trigger: "GET(volume)", Method: "GET", Resource: "volume",
			Outcome: "rejected", SecReqs: []string{"1.1", "1.3"}, Time: 2000},
		{Trigger: "POST(volume)", Method: "POST", Resource: "volume",
			Outcome: "violation:postcondition", SecReqs: []string{"1.3"}, Time: 3000,
			StageNanos: map[string]int64{"forward": 12000}},
	}
	for _, r := range recs {
		log.Append(r)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestListFilters(t *testing.T) {
	dir := writeTrail(t)
	var sb strings.Builder
	code, err := run([]string{"list", "-dir", dir, "-secreq", "1.3"}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("list: code=%d err=%v", code, err)
	}
	out := sb.String()
	if !strings.Contains(out, "2 of 3 records matched") {
		t.Fatalf("secreq filter output:\n%s", out)
	}
	if strings.Contains(out, "DELETE") {
		t.Fatalf("secreq filter leaked the DELETE record:\n%s", out)
	}

	sb.Reset()
	if code, err := run([]string{"list", "-dir", dir, "-outcome", "blocked"}, &sb); err != nil || code != 0 {
		t.Fatalf("list -outcome: code=%d err=%v", code, err)
	}
	if !strings.Contains(sb.String(), "1 of 3 records matched") {
		t.Fatalf("outcome filter output:\n%s", sb.String())
	}

	sb.Reset()
	if code, err := run([]string{"list", "-dir", dir, "-json", "-outcome", "rejected"}, &sb); err != nil || code != 0 {
		t.Fatalf("list -json: code=%d err=%v", code, err)
	}
	if !strings.Contains(sb.String(), `"sec_reqs":["1.1","1.3"]`) {
		t.Fatalf("json output:\n%s", sb.String())
	}
}

func TestSummarize(t *testing.T) {
	dir := writeTrail(t)
	var sb strings.Builder
	code, err := run([]string{"summarize", "-dir", dir}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("summarize: code=%d err=%v", code, err)
	}
	out := sb.String()
	for _, want := range []string{
		"3 records in 1 segments",
		"blocked=1",
		"rejected=1",
		"violation:postcondition=1",
		"1.3=2",
		"stage forward",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyCleanAndTorn(t *testing.T) {
	dir := writeTrail(t)
	var sb strings.Builder
	code, err := run([]string{"verify", "-dir", dir}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("verify clean: code=%d err=%v\n%s", code, err, sb.String())
	}
	if !strings.Contains(sb.String(), "chain OK") {
		t.Fatalf("verify output:\n%s", sb.String())
	}

	// Truncate the last record mid-way: verify must exit 1.
	segs, err := obs.AuditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0].Path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	code, err = run([]string{"verify", "-dir", dir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("verify on torn chain: code=%d, want 1\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "torn final record") {
		t.Fatalf("verify output:\n%s", sb.String())
	}
}

func TestBadUsage(t *testing.T) {
	var sb strings.Builder
	if code, _ := run(nil, &sb); code != 2 {
		t.Fatalf("no args: code=%d, want 2", code)
	}
	if code, err := run([]string{"bogus"}, &sb); code != 2 || err == nil {
		t.Fatalf("unknown subcommand: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"list"}, &sb); code != 2 || err == nil {
		t.Fatalf("list without -dir: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"verify"}, &sb); code != 2 || err == nil {
		t.Fatalf("verify without -dir/-pack: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"pack", "-dir", "x"}, &sb); code != 2 || err == nil {
		t.Fatalf("pack without -out/-key: code=%d err=%v", code, err)
	}
}

func TestVerifyMidFileCorruptionExit3(t *testing.T) {
	dir := writeTrail(t)
	segs, err := obs.AuditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	// Zero a byte in the FIRST record: mid-file damage, not a crash tail.
	data[5] = 0x00
	if err := os.WriteFile(segs[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	code, err := run([]string{"verify", "-dir", dir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 3 {
		t.Fatalf("mid-file corruption: code=%d, want 3\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "corrupt mid-file record") {
		t.Fatalf("verify output:\n%s", sb.String())
	}
}

func TestListStreamsWithLimit(t *testing.T) {
	dir := writeTrail(t)
	var sb strings.Builder
	code, err := run([]string{"list", "-dir", dir, "-limit", "2"}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("list -limit: code=%d err=%v", code, err)
	}
	if !strings.Contains(sb.String(), "2 records shown (limit 2)") {
		t.Fatalf("limit output:\n%s", sb.String())
	}
}

// packTrail cuts a signed pack from a fresh trail via the CLI and
// returns its path plus the key file.
func packTrail(t *testing.T, zip bool) (pack, key string) {
	t.Helper()
	dir := writeTrail(t)
	tmp := t.TempDir()
	key = filepath.Join(tmp, "sign.key")
	pack = filepath.Join(tmp, "run.pack")
	if zip {
		pack += ".zip"
	}
	var sb strings.Builder
	if code, err := run([]string{"keygen", "-out", key}, &sb); err != nil || code != 0 {
		t.Fatalf("keygen: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"pack", "-dir", dir, "-out", pack, "-key", key, "-scenario", "test"}, &sb); err != nil || code != 0 {
		t.Fatalf("pack: code=%d err=%v\n%s", code, err, sb.String())
	}
	return pack, key
}

func TestPackVerifyRoundTrip(t *testing.T) {
	for _, zip := range []bool{false, true} {
		pack, key := packTrail(t, zip)
		var sb strings.Builder
		code, err := run([]string{"verify", "-pack", pack, "-pub", key + ".pub"}, &sb)
		if err != nil || code != 0 {
			t.Fatalf("zip=%v verify -pack: code=%d err=%v\n%s", zip, code, err, sb.String())
		}
		if !strings.Contains(sb.String(), "pack OK") {
			t.Fatalf("verify output:\n%s", sb.String())
		}
	}
}

func TestPackTamperExit4(t *testing.T) {
	pack, _ := packTrail(t, false)
	seg := filepath.Join(pack, "segments", "audit-000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	code, err := run([]string{"verify", "-pack", pack}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 4 {
		t.Fatalf("tampered pack: code=%d, want 4\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "manifest mismatch") {
		t.Fatalf("verify output:\n%s", sb.String())
	}
	// replay must refuse the tampered pack with the same exit code.
	sb.Reset()
	code, err = run([]string{"replay", "-pack", pack}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 4 {
		t.Fatalf("replay of tampered pack: code=%d, want 4\n%s", code, sb.String())
	}
}

// TestReadAuditTreeFleetRoot: a directory without segments of its own but
// with per-instance subdirectories reads as the merged record set.
func TestReadAuditTreeFleetRoot(t *testing.T) {
	root := t.TempDir()
	total := 0
	for _, id := range []string{"m-00", "m-01"} {
		sub := filepath.Join(root, id)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		log, err := obs.OpenAuditLog(sub, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			log.Append(&obs.AuditRecord{Trigger: "GET(volume)", Method: "GET", Resource: "volume",
				Outcome: "error", Instance: id, Time: int64(i + 1)})
			total++
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := readAuditTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs.Records) != total {
		t.Fatalf("merged %d records, want %d", len(recs.Records), total)
	}
	byInstance := map[string]int{}
	for _, rec := range recs.Records {
		byInstance[rec.Instance]++
	}
	if byInstance["m-00"] != 3 || byInstance["m-01"] != 3 {
		t.Fatalf("merged records per instance: %v", byInstance)
	}
	// A flat trail still reads directly.
	flat := writeTrail(t)
	if recs, err = readAuditTree(flat); err != nil || len(recs.Records) != 3 {
		t.Fatalf("flat trail: %v, %d records", err, len(recs.Records))
	}
	// An empty root is an explicit error, not an empty replay.
	if _, err := readAuditTree(t.TempDir()); err == nil {
		t.Fatal("empty root accepted")
	}
}

func TestReplayDigestMismatchExit5(t *testing.T) {
	// The synthetic trail's records carry no contract digest and no
	// snapshots: the DELETE and GET records resolve to cinder triggers
	// but replay against empty state. Bind one to a bogus digest — the
	// replayer must refuse to compare and exit 5.
	dir := t.TempDir()
	log, err := obs.OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(&obs.AuditRecord{Trigger: "GET(volume)", Method: "GET", Resource: "volume",
		Outcome: "error", Time: 1})
	log.Append(&obs.AuditRecord{Trigger: "GET(volume)", Method: "GET", Resource: "volume",
		Outcome: "blocked", ContractDigest: "sha256:bogus", Time: 2})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	code, err := run([]string{"replay", "-dir", dir, "-model", "cinder"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 5 {
		t.Fatalf("digest mismatch: code=%d, want 5\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "DIVERGED") {
		t.Fatalf("replay output:\n%s", sb.String())
	}
}
