package main

import (
	"os"
	"strings"
	"testing"

	"cloudmon/internal/obs"
)

// writeTrail builds a small audit trail and returns its directory.
func writeTrail(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	log, err := obs.OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*obs.AuditRecord{
		{Trigger: "DELETE(volume)", Method: "DELETE", Resource: "volume",
			Outcome: "blocked", SecReqs: []string{"1.4"}, Time: 1000},
		{Trigger: "GET(volume)", Method: "GET", Resource: "volume",
			Outcome: "rejected", SecReqs: []string{"1.1", "1.3"}, Time: 2000},
		{Trigger: "POST(volume)", Method: "POST", Resource: "volume",
			Outcome: "violation:postcondition", SecReqs: []string{"1.3"}, Time: 3000,
			StageNanos: map[string]int64{"forward": 12000}},
	}
	for _, r := range recs {
		log.Append(r)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestListFilters(t *testing.T) {
	dir := writeTrail(t)
	var sb strings.Builder
	code, err := run([]string{"list", "-dir", dir, "-secreq", "1.3"}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("list: code=%d err=%v", code, err)
	}
	out := sb.String()
	if !strings.Contains(out, "2 of 3 records matched") {
		t.Fatalf("secreq filter output:\n%s", out)
	}
	if strings.Contains(out, "DELETE") {
		t.Fatalf("secreq filter leaked the DELETE record:\n%s", out)
	}

	sb.Reset()
	if code, err := run([]string{"list", "-dir", dir, "-outcome", "blocked"}, &sb); err != nil || code != 0 {
		t.Fatalf("list -outcome: code=%d err=%v", code, err)
	}
	if !strings.Contains(sb.String(), "1 of 3 records matched") {
		t.Fatalf("outcome filter output:\n%s", sb.String())
	}

	sb.Reset()
	if code, err := run([]string{"list", "-dir", dir, "-json", "-outcome", "rejected"}, &sb); err != nil || code != 0 {
		t.Fatalf("list -json: code=%d err=%v", code, err)
	}
	if !strings.Contains(sb.String(), `"sec_reqs":["1.1","1.3"]`) {
		t.Fatalf("json output:\n%s", sb.String())
	}
}

func TestSummarize(t *testing.T) {
	dir := writeTrail(t)
	var sb strings.Builder
	code, err := run([]string{"summarize", "-dir", dir}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("summarize: code=%d err=%v", code, err)
	}
	out := sb.String()
	for _, want := range []string{
		"3 records in 1 segments",
		"blocked=1",
		"rejected=1",
		"violation:postcondition=1",
		"1.3=2",
		"stage forward",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyCleanAndTorn(t *testing.T) {
	dir := writeTrail(t)
	var sb strings.Builder
	code, err := run([]string{"verify", "-dir", dir}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("verify clean: code=%d err=%v\n%s", code, err, sb.String())
	}
	if !strings.Contains(sb.String(), "chain OK") {
		t.Fatalf("verify output:\n%s", sb.String())
	}

	// Truncate the last record mid-way: verify must exit 1.
	segs, err := obs.AuditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0].Path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	code, err = run([]string{"verify", "-dir", dir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("verify on torn chain: code=%d, want 1\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "torn final record") {
		t.Fatalf("verify output:\n%s", sb.String())
	}
}

func TestBadUsage(t *testing.T) {
	var sb strings.Builder
	if code, _ := run(nil, &sb); code != 2 {
		t.Fatalf("no args: code=%d, want 2", code)
	}
	if code, err := run([]string{"bogus"}, &sb); code != 2 || err == nil {
		t.Fatalf("unknown subcommand: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"list"}, &sb); code != 2 || err == nil {
		t.Fatalf("list without -dir: code=%d err=%v", code, err)
	}
}
