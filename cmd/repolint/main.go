// Command repolint runs the repo's own static analyzers (internal/lint)
// over a source tree and exits non-zero on any finding. It complements
// `go vet`: vet checks general Go mistakes, repolint checks invariants
// specific to this codebase (hot-path allocation discipline, atomic
// counter usage).
//
// Usage:
//
//	repolint [root]
//
// root defaults to the current directory.
package main

import (
	"fmt"
	"os"

	"cloudmon/internal/lint"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := lint.Run(root, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
