package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEmitExample(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cinder.xmi")
	if err := run([]string{"-emit-example", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty XMI file")
	}
}

func TestGenerateFromXMI(t *testing.T) {
	dir := t.TempDir()
	xmiPath := filepath.Join(dir, "cinder.xmi")
	if err := run([]string{"-emit-example", xmiPath}); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "out")
	dotPath := filepath.Join(dir, "model.dot")
	if err := run([]string{"-out", outDir, "-contracts", "-dot", dotPath, "cindermon", xmiPath}); err != nil {
		t.Fatalf("run: %v", err)
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil || len(dot) == 0 {
		t.Errorf("dot file: %v (%d bytes)", err, len(dot))
	}
	for _, name := range []string{"go.mod", "resources.go", "contracts.go", "routes.go", "handlers.go", "main.go"} {
		if _, err := os.Stat(filepath.Join(outDir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"onlyproject"}); err == nil {
		t.Error("single arg accepted")
	}
	if err := run([]string{"proj", "missing.xmi"}); err == nil {
		t.Error("missing XMI file accepted")
	}
}
