// Command uml2go generates a runnable cloud-monitor skeleton from design
// models, mirroring the paper's invocation:
//
//	uml2go ProjectName DiagramsFile.xmi
//
// Flags:
//
//	-out DIR     output directory (default: ./<ProjectName>)
//	-cloud URL   backend cloud URL baked into the skeleton
//	-contracts   also print the generated contracts (Listing-1 format)
//	-lenient     generate even when static analysis reports errors
//	-emit-example PATH  write the bundled Cinder example model as XMI and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cloudmon/internal/codegen"
	"cloudmon/internal/contract"
	"cloudmon/internal/paper"
	"cloudmon/internal/xmi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "uml2go:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("uml2go", flag.ContinueOnError)
	out := fs.String("out", "", "output directory (default ./<ProjectName>)")
	cloudURL := fs.String("cloud", "http://127.0.0.1:8776", "private cloud base URL")
	printContracts := fs.Bool("contracts", false, "print generated contracts")
	emitExample := fs.String("emit-example", "", "write the bundled Cinder example model as XMI to PATH and exit")
	lenient := fs.Bool("lenient", false, "generate even when static analysis (modelvet) reports errors")
	dotPath := fs.String("dot", "", "also write a Graphviz rendering of the models to PATH")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *emitExample != "" {
		if err := xmi.WriteFile(*emitExample, paper.CinderModel()); err != nil {
			return err
		}
		fmt.Printf("wrote example Cinder model to %s\n", *emitExample)
		return nil
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: uml2go [flags] ProjectName DiagramsFile.xmi")
	}
	project, xmiPath := fs.Arg(0), fs.Arg(1)

	model, err := xmi.ReadFile(xmiPath)
	if err != nil {
		return err
	}
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(model.Dot()), 0o644); err != nil {
			return fmt.Errorf("write dot file: %w", err)
		}
		fmt.Printf("wrote Graphviz rendering to %s\n", *dotPath)
	}
	res, err := codegen.Generate(model, codegen.Options{
		Project:     project,
		CloudURL:    *cloudURL,
		Lenient:     *lenient,
		AnalysisLog: os.Stderr,
	})
	if err != nil {
		return err
	}
	dir := *out
	if dir == "" {
		dir = project
	}
	if err := codegen.WriteFiles(dir, res.Files); err != nil {
		return err
	}
	names := make([]string, 0, len(res.Files))
	for name := range res.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("generated %d files in %s:\n", len(names), dir)
	for _, name := range names {
		fmt.Printf("  %s (%d bytes)\n", name, len(res.Files[name]))
	}
	if *printContracts {
		fmt.Println()
		fmt.Print(contract.RenderSet(res.Contracts, contract.StyleConjunction))
	}
	return nil
}
